package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func leaseClock() time.Time { return time.Unix(1000, 0) }

func TestLeaseAcquireRenewLapse(t *testing.T) {
	now := leaseClock()
	ttl := 100 * time.Millisecond
	m := newLeaseMachine(ttl)

	if m.Leading(now) {
		t.Fatal("fresh machine should not lead")
	}
	if m.Lapsed(now) {
		t.Fatal("follower with no observed grant must not report lapsed")
	}
	if err := m.Acquire(now, leaseGen(0)); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if !m.Leading(now) {
		t.Fatal("should lead after acquire")
	}
	// An acked renewal extends the lease from the renewal's send time.
	sendAt := now.Add(ttl / 2)
	seq, err := m.Renew(sendAt)
	if err != nil {
		t.Fatalf("renew: %v", err)
	}
	m.Ack(seq)
	if !m.Leading(sendAt.Add(ttl - time.Millisecond)) {
		t.Fatal("should still lead inside acked window")
	}
	// Letting the lease lapse fences the leader on its next check.
	if m.Leading(sendAt.Add(ttl + time.Millisecond)) {
		t.Fatal("lapsed leader must not report leading")
	}
	if !m.Fenced() {
		t.Fatal("lapsed leader must self-fence")
	}
}

func TestLeaseUnackedRenewDoesNotExtend(t *testing.T) {
	now := leaseClock()
	ttl := 100 * time.Millisecond
	m := newLeaseMachine(ttl)
	if err := m.Acquire(now, 1); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// Renewals whose acks never arrive must not extend the lease.
	if _, err := m.Renew(now.Add(ttl / 3)); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if _, err := m.Renew(now.Add(2 * ttl / 3)); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if m.Leading(now.Add(ttl + time.Millisecond)) {
		t.Fatal("unacked renewals must not keep the leader alive")
	}
	if !m.Fenced() {
		t.Fatal("leader must self-fence at the self-granted expiry")
	}
}

func TestLeaseCumulativeAndStaleAcks(t *testing.T) {
	now := leaseClock()
	ttl := 100 * time.Millisecond
	m := newLeaseMachine(ttl)
	if err := m.Acquire(now, 1); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	s1, _ := m.Renew(now.Add(20 * time.Millisecond))
	s2, _ := m.Renew(now.Add(40 * time.Millisecond))
	m.Ack(s2)
	// Ack of s2 covers s1; a late s1 ack must not rewind the expiry.
	m.Ack(s1)
	if !m.Leading(now.Add(40*time.Millisecond + ttl - time.Millisecond)) {
		t.Fatal("expiry should follow the newest acked renewal")
	}
	m.Ack(99) // unknown seq ignored
	if m.Leading(now.Add(40*time.Millisecond + ttl + time.Millisecond)) {
		t.Fatal("unknown-seq ack must not extend the lease")
	}
}

func TestLeaseRenewAfterLapseFences(t *testing.T) {
	now := leaseClock()
	ttl := 50 * time.Millisecond
	m := newLeaseMachine(ttl)
	if err := m.Acquire(now, 1); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if _, err := m.Renew(now.Add(ttl + time.Millisecond)); err == nil {
		t.Fatal("renew after expiry must fail")
	}
	if !m.Fenced() {
		t.Fatal("renew after expiry must fence")
	}
}

func TestLeaseLeaderFencedByHigherGen(t *testing.T) {
	now := leaseClock()
	m := newLeaseMachine(100 * time.Millisecond)
	if err := m.Acquire(now, 1); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	m.Observe(now, 2)
	if !m.Fenced() {
		t.Fatal("leader observing a higher generation must fence")
	}
	if m.Leading(now) {
		t.Fatal("fenced leader must not report leading")
	}
}

func TestLeaseFollowerWatchedExpiry(t *testing.T) {
	now := leaseClock()
	ttl := 100 * time.Millisecond
	m := newLeaseMachine(ttl)
	m.Observe(now, 1)
	if m.Lapsed(now.Add(ttl / 2)) {
		t.Fatal("follower must not lapse inside the watched window")
	}
	// A renewal pushes the watched expiry out from receipt time.
	now = now.Add(ttl / 2)
	m.Observe(now, 1)
	if m.Lapsed(now.Add(ttl - time.Millisecond)) {
		t.Fatal("renewal must extend the watched window")
	}
	if !m.Lapsed(now.Add(ttl + time.Millisecond)) {
		t.Fatal("follower must lapse after the watched window")
	}
	// Cannot acquire before the watched lease expires, even with a new gen.
	if err := m.Acquire(now.Add(ttl/2), 2); err == nil {
		t.Fatal("acquire inside watched window must fail")
	}
	if err := m.Acquire(now.Add(ttl+time.Millisecond), 2); err != nil {
		t.Fatalf("acquire after watched lapse: %v", err)
	}
}

func TestLeaseStaleObserveIgnored(t *testing.T) {
	now := leaseClock()
	ttl := 100 * time.Millisecond
	m := newLeaseMachine(ttl)
	m.Observe(now, 5)
	// A delayed renewal from a superseded generation must not extend the
	// watched window.
	m.Observe(now.Add(ttl/2), 3)
	if !m.Lapsed(now.Add(ttl + time.Millisecond)) {
		t.Fatal("stale-generation observe must not extend the watched window")
	}
}

func TestLeaseFencedGenerationNeverReacquires(t *testing.T) {
	now := leaseClock()
	ttl := 50 * time.Millisecond
	m := newLeaseMachine(ttl)
	if err := m.Acquire(now, 1); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if m.Leading(now.Add(2 * ttl)) {
		t.Fatal("should have lapsed")
	}
	// Fenced is terminal: neither acquire nor renew can revive the node.
	if err := m.Acquire(now.Add(3*ttl), 99); err == nil {
		t.Fatal("fenced node must not re-acquire")
	}
	if _, err := m.Renew(now.Add(3 * ttl)); err == nil {
		t.Fatal("fenced node must not renew")
	}
}

// leaseSimMsg is an in-flight renewal or ack in the property test's
// delayed-delivery network.
type leaseSimMsg struct {
	at   time.Time
	kind byte // 'r' renewal (leader→follower), 'a' ack (follower→leader)
	gen  int64
	seq  int64
	to   int
}

// TestLeasePropertyAtMostOneLeader drives a primary + standby pair (the
// deployment topology) through randomized interleavings of renewals,
// delayed and dropped deliveries, delayed acks, lapses, takeovers and
// revival attempts by fenced nodes, asserting after every step that at most
// one node holds an unfenced lease and that a fenced generation never
// re-acquires.
func TestLeasePropertyAtMostOneLeader(t *testing.T) {
	const nodes = 2
	for seed := int64(1); seed <= 80; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			ttl := 80 * time.Millisecond
			now := leaseClock()
			ms := make([]*leaseMachine, nodes)
			for i := range ms {
				ms[i] = newLeaseMachine(ttl)
			}
			var inflight []leaseSimMsg
			send := func(kind byte, from int, gen, seq int64) {
				to := 1 - from
				if rng.Float64() < 0.15 { // dropped message
					return
				}
				delay := time.Duration(rng.Int63n(int64(3 * ttl / 2)))
				inflight = append(inflight, leaseSimMsg{at: now.Add(delay), kind: kind, gen: gen, seq: seq, to: to})
			}
			// Node 0 boots as primary; node 1 watches the grant.
			if err := ms[0].Acquire(now, leaseGen(0)); err != nil {
				t.Fatalf("initial acquire: %v", err)
			}
			send('r', 0, ms[0].Gen(), 0)

			fencedGens := map[int64]bool{}
			maxAcquired := ms[0].Gen()
			for step := 0; step < 600; step++ {
				now = now.Add(time.Duration(1+rng.Int63n(20)) * time.Millisecond)
				// Deliver due messages.
				rest := inflight[:0]
				for _, msg := range inflight {
					if msg.at.After(now) {
						rest = append(rest, msg)
						continue
					}
					m := ms[msg.to]
					switch msg.kind {
					case 'r':
						m.Observe(msg.at, msg.gen)
						// Follower acks the renewal it just observed.
						if !m.Leading(msg.at) {
							send('a', msg.to, msg.gen, msg.seq)
						}
					case 'a':
						if m.Gen() == msg.gen {
							m.Ack(msg.seq)
						}
					}
				}
				inflight = rest

				for i, m := range ms {
					switch {
					case m.Fenced():
						fencedGens[m.Gen()] = true
						// Revival attempts by a fenced node must all fail.
						if err := m.Acquire(now, m.MaxObserved()+1); err == nil {
							t.Fatalf("step %d: fenced node %d re-acquired", step, i)
						}
					case m.Leading(now):
						if rng.Float64() < 0.8 {
							if seq, err := m.Renew(now); err == nil {
								send('r', i, m.Gen(), seq)
							}
						}
					case m.Lapsed(now):
						gen := m.MaxObserved() + 1
						if err := m.Acquire(now, gen); err == nil {
							if fencedGens[gen] {
								t.Fatalf("step %d: fenced generation %d re-acquired", step, gen)
							}
							if gen <= maxAcquired {
								t.Fatalf("step %d: generation %d acquired twice (max %d)", step, gen, maxAcquired)
							}
							maxAcquired = gen
							send('r', i, gen, 0)
						}
					}
				}

				leaders := 0
				for _, m := range ms {
					if m.Leading(now) {
						leaders++
					}
				}
				if leaders > 1 {
					t.Fatalf("step %d: %d simultaneous unfenced leaders", step, leaders)
				}
			}
		})
	}
}
