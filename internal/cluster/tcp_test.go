package cluster

import (
	"testing"
	"time"

	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/loadbal"
	"treeserver/internal/synth"
	"treeserver/internal/task"
	"treeserver/internal/transport"
)

// TestClusterOverTCP runs master and workers over real loopback TCP sockets
// — the deployment cmd/treeserver uses — and checks the trained tree is
// identical to serial training.
func TestClusterOverTCP(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{
		Name: "tcp", Rows: 3000, NumNumeric: 5, NumCategorical: 2,
		NumClasses: 2, ConceptDepth: 4, Seed: 91,
	})
	schema := SchemaOf(tbl)
	const numWorkers = 3
	placement := loadbal.RoundRobin(tbl.FeatureIndexes(), numWorkers, 2)

	// Bring up workers first (ephemeral ports), then wire the peer tables.
	workers := make([]*Worker, numWorkers)
	weps := make([]*transport.TCPEndpoint, numWorkers)
	for i := 0; i < numWorkers; i++ {
		ep, err := transport.ListenTCP(WorkerName(i), "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		weps[i] = ep
	}
	mep, err := transport.ListenTCP(MasterName, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, ep := range weps {
		ep.AddPeer(MasterName, mep.Addr())
		for j, other := range weps {
			if j != i {
				ep.AddPeer(WorkerName(j), other.Addr())
			}
		}
		mep.AddPeer(WorkerName(i), ep.Addr())
		cols := map[int]*dataset.Column{}
		for col, owners := range placement.Owners {
			for _, o := range owners {
				if o == i {
					cols[col] = tbl.Cols[col]
				}
			}
		}
		workers[i] = NewWorker(i, ep, schema, cols, tbl.Y(), 2, nil)
		workers[i].Start()
	}
	m, err := NewMaster(mep, schema, placement, MasterConfig{
		NumWorkers: numWorkers,
		Policy:     task.Policy{TauD: 400, TauDFS: 1600, NPool: 4},
		JobTimeout: time.Minute,
	})
	if err != nil {
		t.Fatalf("NewMaster: %v", err)
	}
	m.Start()
	defer func() {
		m.Stop()
		for _, w := range workers {
			w.Stop()
		}
	}()

	params := core.Defaults()
	params.MaxDepth = 7
	trees, err := m.Train([]TreeSpec{{Params: params}})
	if err != nil {
		t.Fatalf("train over TCP: %v", err)
	}
	want := core.TrainLocal(tbl, dataset.AllRows(tbl.NumRows()), params)
	if !trees[0].Equal(want) {
		t.Fatal("TCP-trained tree differs from serial")
	}
	if mep.Stats().BytesSent == 0 || weps[0].Stats().BytesSent == 0 {
		t.Fatal("no TCP traffic recorded")
	}
}
