package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"

	"treeserver/internal/checkpoint"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/obs"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

// recoveryTable is shared by the crash-recovery tests: big enough that an
// 8-tree job survives long enough to kill the master mid-flight.
func recoveryTable() *dataset.Table {
	return synth.GenerateTrain(synth.Spec{
		Name: "recovery", Rows: 2500, NumNumeric: 6, NumCategorical: 2,
		CatLevels: 4, NumClasses: 3, ConceptDepth: 5, LabelNoise: 0.05, Seed: 77,
	})
}

func recoverySpecs(rows, n int) []TreeSpec {
	params := core.Defaults()
	params.MaxDepth = 8
	specs := make([]TreeSpec, n)
	for i := range specs {
		specs[i] = TreeSpec{Params: params, Bag: BagSpec{NumRows: rows, Sample: rows, Seed: int64(100 + i)}}
	}
	return specs
}

// serialOracle trains each spec with the serial trainer — the bit-identity
// reference a resumed job must match.
func serialOracle(tbl *dataset.Table, specs []TreeSpec) []*core.Tree {
	out := make([]*core.Tree, len(specs))
	for i, spec := range specs {
		out[i] = core.TrainLocal(tbl, spec.Bag.Rows(), spec.Params)
	}
	return out
}

func assertBitIdentical(t *testing.T, got, want []*core.Tree) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d trees, want %d", len(got), len(want))
	}
	for i := range want {
		if d := core.DiffTrees(want[i], got[i]); d != "" {
			t.Fatalf("tree %d diverged from serial oracle:\n%s", i, d)
		}
	}
}

// TestMasterKillResumeBitIdentical is the tentpole guarantee: kill the master
// mid-job, restart it, Resume, and the final forest is bit-identical to an
// uninterrupted run — with already-completed trees restored from disk, not
// retrained.
func TestMasterKillResumeBitIdentical(t *testing.T) {
	tbl := recoveryTable()
	specs := recoverySpecs(tbl.NumRows(), 8)

	cfg := testConfig()
	cfg.Policy = task.Policy{TauD: 600, TauDFS: 2400, NPool: 2}
	cfg.CheckpointDir = t.TempDir()
	cfg.Observer = obs.NewRegistry()
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()

	trainErr := make(chan error, 1)
	go func() {
		_, err := c.Train(specs)
		trainErr <- err
	}()

	// Kill once at least two trees are durable but the job is not done.
	deadline := time.After(30 * time.Second)
	for c.Master.CompletedTrees() < 2 {
		select {
		case err := <-trainErr:
			t.Fatalf("job finished before the kill (err=%v); slow the config down", err)
		case <-deadline:
			t.Fatal("no trees completed within 30s")
		case <-time.After(time.Millisecond):
		}
	}
	c.KillMaster()
	if err := <-trainErr; err == nil || !strings.Contains(err.Error(), "master stopped") {
		t.Fatalf("killed Train returned %v, want 'master stopped'", err)
	}

	if err := c.RestartMaster(); err != nil {
		t.Fatalf("RestartMaster: %v", err)
	}
	got, err := c.Resume()
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	assertBitIdentical(t, got, serialOracle(tbl, specs))

	s := cfg.Observer.Snapshot().Master
	if s.Restores != 1 || s.RestoredTrees < 2 {
		t.Fatalf("restore telemetry: restores %d restored %d, want 1 restore of >= 2 trees", s.Restores, s.RestoredTrees)
	}
	if s.CheckpointSnapshots < 2 {
		t.Fatalf("checkpoint snapshots %d, want >= 2 (job start + resume)", s.CheckpointSnapshots)
	}
	// The restored ledger must not regress: planned in the resumed registry
	// covers at least what the checkpoint recorded.
	if s.TasksPlanned <= 0 {
		t.Fatalf("ledger not restored: planned %d", s.TasksPlanned)
	}
}

// TestResumeAfterJobComplete: a master restarted after the job finished
// restores every tree from the final snapshot and trains nothing.
func TestResumeAfterJobComplete(t *testing.T) {
	tbl := recoveryTable()
	specs := recoverySpecs(tbl.NumRows(), 3)

	cfg := testConfig()
	cfg.CheckpointDir = t.TempDir()
	cfg.Observer = obs.NewRegistry()
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()

	want, err := c.Train(specs)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	c.KillMaster()
	if err := c.RestartMaster(); err != nil {
		t.Fatalf("RestartMaster: %v", err)
	}
	got, err := c.Resume()
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	assertBitIdentical(t, got, want)
	if s := cfg.Observer.Snapshot().Master; s.RestoredTrees != 3 {
		t.Fatalf("restored %d trees from final snapshot, want 3", s.RestoredTrees)
	}
}

// TestResumeRejoinSurvivesWorkerLoss: the master dies AND one worker dies.
// Resume must proceed with the workers that answered the rejoin handshake,
// re-replicate the dead worker's columns from survivors, and still finish
// bit-identically.
func TestResumeRejoinSurvivesWorkerLoss(t *testing.T) {
	tbl := recoveryTable()
	specs := recoverySpecs(tbl.NumRows(), 6)

	cfg := testConfig()
	cfg.Policy = task.Policy{TauD: 600, TauDFS: 2400, NPool: 2}
	cfg.CheckpointDir = t.TempDir()
	cfg.RejoinTimeout = 2 * time.Second
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()

	trainErr := make(chan error, 1)
	go func() {
		_, err := c.Train(specs)
		trainErr <- err
	}()
	deadline := time.After(30 * time.Second)
	for c.Master.CompletedTrees() < 1 {
		select {
		case err := <-trainErr:
			t.Fatalf("job finished before the kill (err=%v)", err)
		case <-deadline:
			t.Fatal("no trees completed within 30s")
		case <-time.After(time.Millisecond):
		}
	}
	c.KillMaster()
	<-trainErr
	c.CrashWorker(3) // dies while the master is down; it will miss the rejoin

	if err := c.RestartMaster(); err != nil {
		t.Fatalf("RestartMaster: %v", err)
	}
	got, err := c.Resume()
	if err != nil {
		t.Fatalf("Resume with one dead worker: %v", err)
	}
	assertBitIdentical(t, got, serialOracle(tbl, specs))

	alive := c.Master.AliveWorkers()
	for _, w := range alive {
		if w == 3 {
			t.Fatal("non-rejoining worker still marked alive")
		}
	}
	if len(alive) != 3 {
		t.Fatalf("alive workers %v, want the 3 rejoiners", alive)
	}
}

// TestResumeValidationErrors pins the error surface: Resume without a
// checkpoint directory, and with an empty one.
func TestResumeValidationErrors(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{Name: "tiny", Rows: 300, NumNumeric: 3, NumClasses: 2, ConceptDepth: 2, Seed: 5})

	c := newTestCluster(t, tbl, testConfig())
	if _, err := c.Resume(); err == nil || !strings.Contains(err.Error(), "CheckpointDir") {
		t.Fatalf("Resume without checkpointing: %v, want CheckpointDir error", err)
	}
	c.Close()

	cfg := testConfig()
	cfg.CheckpointDir = t.TempDir()
	c = newTestCluster(t, tbl, cfg)
	defer c.Close()
	if _, err := c.Resume(); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("Resume from empty dir: %v, want ErrNoCheckpoint", err)
	}
}

// TestCheckpointEveryWritesPeriodicSnapshots: with a short interval, multiple
// snapshot files accumulate (pruned to the newest two) during one job.
func TestCheckpointEveryWritesPeriodicSnapshots(t *testing.T) {
	tbl := recoveryTable()
	cfg := testConfig()
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 20 * time.Millisecond
	cfg.Observer = obs.NewRegistry()
	c := newTestCluster(t, tbl, cfg)
	defer c.Close()

	if _, err := c.Train(recoverySpecs(tbl.NumRows(), 4)); err != nil {
		t.Fatalf("train: %v", err)
	}
	if s := cfg.Observer.Snapshot().Master; s.CheckpointSnapshots < 3 {
		t.Fatalf("periodic checkpointing wrote %d snapshots, want >= 3", s.CheckpointSnapshots)
	}
}
