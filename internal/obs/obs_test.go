package obs

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"treeserver/internal/transport"
)

// TestNilSafety drives every collector method through a nil receiver — the
// disabled-telemetry path must be a no-op, never a panic.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.CountSend("a", "b", "T", 10)
	r.CountRetry("a", "b")
	if got := r.Snapshot(); len(got.Workers) != 0 || got.Master.TasksPlanned != 0 {
		t.Fatalf("nil registry snapshot not zero: %+v", got)
	}
	r.PublishExpvar()

	m := r.Master()
	if m != nil {
		t.Fatal("nil registry returned non-nil MasterObs")
	}
	m.PlanPushed(true)
	m.PlanRequeued()
	m.SetDequeDepth(3)
	m.SetPool(2)
	m.TaskPlanned(100, 1)
	m.TaskConfirmed(time.Millisecond)
	m.TaskCompleted()
	m.SplitApplied(time.Millisecond)
	m.TaskRetried()
	m.TaskSuperseded()
	m.CheckpointWritten(true, 100, time.Millisecond)
	m.CheckpointError()
	m.RestoreCompleted(2, 1, 1)
	m.TreeRestarted(1)
	m.HedgeLaunched()
	m.HedgeWon()
	m.HedgeWasted()
	m.WorkerQuarantined()
	m.ProbeSent()
	m.WorkerRestored()
	m.SetWorkerHealth([]float64{1, 0.5}, []string{"closed", "open"})
	m.RestoreLedger(TaskLedger{Planned: 5})
	if got := m.Ledger(); got != (TaskLedger{}) {
		t.Fatalf("nil MasterObs ledger not zero: %+v", got)
	}

	w := r.Worker(0)
	w.AddComp(time.Millisecond)
	w.AddSend(time.Millisecond)
	w.AddRecv(time.Millisecond)
	w.RowServed(time.Millisecond)
	w.RowSetGet(true)

	c := r.Split()
	c.DispatchFast()
	c.DispatchFallback()
	c.DispatchCategorical()
	c.ScratchGet(false)

	ep := transport.NewMemNetwork().Endpoint("x")
	if got := r.Wrap(ep); got != transport.Endpoint(ep) {
		t.Fatal("nil registry Wrap should return the endpoint unchanged")
	}
}

// TestHealthTelemetry checks the gray-failure counters and the health gauge
// round-trip through Snapshot and surface in Report.
func TestHealthTelemetry(t *testing.T) {
	r := NewRegistry()
	m := r.Master()
	for i := 0; i < 3; i++ {
		m.HedgeLaunched()
	}
	m.HedgeWon()
	m.HedgeWasted()
	m.HedgeWasted()
	m.WorkerQuarantined()
	m.ProbeSent()
	m.ProbeSent()
	m.WorkerRestored()
	m.SetWorkerHealth([]float64{1.0, 0.02, 0.97}, []string{"closed", "open", "closed"})
	// Gauge semantics: a second pass overwrites, not appends.
	m.SetWorkerHealth([]float64{1.0, 0.04, 0.99}, []string{"closed", "half-open", "closed"})

	s := r.Snapshot()
	if s.Master.HedgesLaunched != 3 || s.Master.HedgesWon != 1 || s.Master.HedgesWasted != 2 {
		t.Fatalf("hedge counters: %+v", s.Master)
	}
	if s.Master.Quarantines != 1 || s.Master.ProbesSent != 2 || s.Master.QuarantineRestores != 1 {
		t.Fatalf("quarantine counters: %+v", s.Master)
	}
	if len(s.Master.HealthScores) != 3 || s.Master.HealthScores[1] != 0.04 {
		t.Fatalf("health scores: %v", s.Master.HealthScores)
	}
	if s.Master.QuarantineStates[1] != "half-open" {
		t.Fatalf("quarantine states: %v", s.Master.QuarantineStates)
	}
	rep := s.Report()
	for _, want := range []string{"hedging: 3 launched, 1 won, 2 wasted", "quarantine: 1 opened, 1 restored, 2 probes", "w1=0.04(half-open)"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestCounterAllocs proves the per-event collector methods allocate nothing:
// they sit on worker/master hot paths and the kernel dispatch path.
func TestCounterAllocs(t *testing.T) {
	r := NewRegistry()
	m := r.Master()
	c := r.Split()
	if n := testing.AllocsPerRun(100, func() {
		m.HedgeLaunched()
		m.HedgeWon()
		m.HedgeWasted()
		m.WorkerQuarantined()
		m.ProbeSent()
		m.WorkerRestored()
		c.DispatchFast()
		c.ScratchGet(true)
	}); n != 0 {
		t.Fatalf("counter methods allocate %v per run, want 0", n)
	}
	scores := []float64{1, 1}
	states := []string{"closed", "closed"}
	m.SetWorkerHealth(scores, states) // warm the gauge buffers
	if n := testing.AllocsPerRun(100, func() {
		m.SetWorkerHealth(scores, states)
	}); n != 0 {
		t.Fatalf("SetWorkerHealth allocates %v per run after warm-up, want 0", n)
	}
}

// TestConcurrentCounters hammers one registry from many goroutines; run
// under -race this is the package's data-race certificate.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const goroutines, iters = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := r.Master()
			w := r.Worker(g % 3)
			c := r.Split()
			for i := 0; i < iters; i++ {
				m.PlanPushed(i%2 == 0)
				m.SetDequeDepth(i)
				m.SetPool(i % 7)
				m.TaskPlanned(10, 1)
				m.TaskCompleted()
				m.HedgeLaunched()
				m.SetWorkerHealth([]float64{1, float64(i)}, []string{"closed", "open"})
				w.AddComp(time.Microsecond)
				w.AddRecv(time.Microsecond)
				c.DispatchFast()
				c.ScratchGet(i%2 == 0)
				r.CountSend("w0", "master", "obs.testMsg", 8)
				r.CountRetry("w0", "master")
			}
		}(g)
	}
	wg.Wait()

	s := r.Snapshot()
	total := int64(goroutines * iters)
	if s.Master.TasksPlanned != total || s.Master.TasksCompleted != total {
		t.Fatalf("lifecycle counts: planned %d completed %d, want %d", s.Master.TasksPlanned, s.Master.TasksCompleted, total)
	}
	if s.Master.PushesBFS+s.Master.PushesDFS != total {
		t.Fatalf("push counts: %d bfs + %d dfs, want %d", s.Master.PushesBFS, s.Master.PushesDFS, total)
	}
	if s.Master.DequeHighWater != iters-1 {
		t.Fatalf("deque high-water %d, want %d", s.Master.DequeHighWater, iters-1)
	}
	if len(s.Workers) != 3 {
		t.Fatalf("worker count %d, want 3", len(s.Workers))
	}
	if len(s.Links) != 1 || s.Links[0].Msgs != total || s.Links[0].Retries != total {
		t.Fatalf("link counters wrong: %+v", s.Links)
	}
	if s.Links[0].From != "w0" || s.Links[0].To != "master" {
		t.Fatalf("link key wrong: %+v", s.Links[0])
	}
	if len(s.Messages) != 1 || s.Messages[0].Count != total || s.Messages[0].Bytes != total*8 {
		t.Fatalf("message counters wrong: %+v", s.Messages)
	}
	if s.Split.FastPath != total {
		t.Fatalf("split fast-path %d, want %d", s.Split.FastPath, total)
	}
	if s.Retries() != total {
		t.Fatalf("Retries() %d, want %d", s.Retries(), total)
	}
}

type pingMsg struct{ N int }

func init() { gob.Register(pingMsg{}) }

// TestEndpointDecorator checks the transport decorator counts delivered
// messages per link and per concrete type, and that retries reported through
// SendWithRetry land in the link counter.
func TestEndpointDecorator(t *testing.T) {
	net := transport.NewMemNetwork()
	r := NewRegistry()
	a := r.Wrap(net.Endpoint("a"))
	net.Endpoint("b")

	for i := 0; i < 5; i++ {
		if err := a.Send("b", pingMsg{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Send("nobody", pingMsg{}); err == nil {
		t.Fatal("send to unknown endpoint should fail")
	}

	if rr, ok := a.(transport.RetryReporter); !ok {
		t.Fatal("obs.Endpoint must implement transport.RetryReporter")
	} else {
		rr.SendRetried("b")
	}

	s := r.Snapshot()
	if len(s.Links) != 1 || s.Links[0].Msgs != 5 {
		t.Fatalf("link counters: %+v (failed sends must not count)", s.Links)
	}
	if s.Links[0].Bytes <= 0 {
		t.Fatalf("link bytes not counted: %+v", s.Links[0])
	}
	if s.Links[0].Retries != 1 {
		t.Fatalf("retries %d, want 1", s.Links[0].Retries)
	}
	if len(s.Messages) != 1 || !strings.Contains(s.Messages[0].Type, "pingMsg") {
		t.Fatalf("message type accounting: %+v", s.Messages)
	}
	if a.Name() != "a" {
		t.Fatalf("decorator Name %q", a.Name())
	}
}

// TestSnapshotSerialisable pins the gob/JSON contract of Snapshot.
func TestSnapshotSerialisable(t *testing.T) {
	r := NewRegistry()
	r.Master().TaskPlanned(42, 1)
	r.Worker(1).AddComp(3 * time.Millisecond)
	r.CountSend("master", "w1", "cluster.ColumnPlanMsg", 128)
	s := r.Snapshot()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var back Snapshot
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	if back.Master.TasksPlanned != 1 || back.Master.RowsPlanned != 42 {
		t.Fatalf("gob round-trip lost data: %+v", back.Master)
	}

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("json marshal: %v", err)
	}
	var jback Snapshot
	if err := json.Unmarshal(data, &jback); err != nil {
		t.Fatalf("json unmarshal: %v", err)
	}
	if len(jback.Workers) != 1 || jback.Workers[0].CompNs != int64(3*time.Millisecond) {
		t.Fatalf("json round-trip lost worker data: %+v", jback.Workers)
	}

	if mw := s.MWork(); len(mw) != 1 || mw[0][0] <= 0 {
		t.Fatalf("MWork: %v", mw)
	}
}

// TestReport sanity-checks the human-readable rendering mentions the core
// sections without pinning exact formatting.
func TestReport(t *testing.T) {
	r := NewRegistry()
	r.Master().PlanPushed(true)
	r.Master().TaskPlanned(10, 1)
	r.Master().TaskCompleted()
	r.Worker(0).AddComp(time.Second)
	r.Split().DispatchFast()
	r.CountSend("w0", "master", "cluster.ColumnResultMsg", 64)
	rep := r.Snapshot().Report()
	for _, want := range []string{"tasks:", "B_plan", "M_work", "split kernels", "links"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestDebugHandler exercises the opt-in debug mux endpoints.
func TestDebugHandler(t *testing.T) {
	r := NewRegistry()
	r.Worker(2).AddComp(time.Millisecond)
	h := r.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/obs", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/obs status %d", rec.Code)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("/debug/obs body not a Snapshot: %v", err)
	}
	if len(s.Workers) != 1 || s.Workers[0].ID != 2 {
		t.Fatalf("/debug/obs workers: %+v", s.Workers)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "treeserver_obs") {
		t.Fatalf("/debug/vars missing treeserver_obs (status %d)", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/ status %d", rec.Code)
	}
}

// TestCheckpointCounters drives the durable-master telemetry end to end:
// write accounting, restore accounting and tree-restart high-water marks.
func TestCheckpointCounters(t *testing.T) {
	r := NewRegistry()
	m := r.Master()
	m.CheckpointWritten(true, 1000, 2*time.Millisecond)
	m.CheckpointWritten(false, 50, time.Millisecond)
	m.CheckpointWritten(false, 50, time.Millisecond)
	m.CheckpointError()
	m.RestoreCompleted(3, 1, 2)
	m.TreeRestarted(1)
	m.TreeRestarted(2)

	s := r.Snapshot().Master
	if s.CheckpointSnapshots != 1 || s.CheckpointRecords != 2 {
		t.Fatalf("write counts: snapshots %d records %d", s.CheckpointSnapshots, s.CheckpointRecords)
	}
	if s.CheckpointBytes != 1100 || s.CheckpointNs != int64(4*time.Millisecond) {
		t.Fatalf("write sums: bytes %d ns %d", s.CheckpointBytes, s.CheckpointNs)
	}
	if s.CheckpointErrors != 1 {
		t.Fatalf("errors %d, want 1", s.CheckpointErrors)
	}
	if s.Restores != 1 || s.RestoredTrees != 3 || s.RestoreSkippedFiles != 1 || s.RestoreTruncatedRecords != 2 {
		t.Fatalf("restore counts: %+v", s)
	}
	if s.TreeRestarts != 2 || s.TreeRestartMax != 2 {
		t.Fatalf("tree restarts %d max %d", s.TreeRestarts, s.TreeRestartMax)
	}
	report := r.Snapshot().Report()
	for _, want := range []string{"checkpoint:", "recovery:", "tree restarts:"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

// TestRestoreLedgerMaxMerge: restoring is max, not add — idempotent, and
// safe whether the registry is fresh (live 0) or survived in-process.
func TestRestoreLedgerMaxMerge(t *testing.T) {
	r := NewRegistry()
	m := r.Master()
	m.TaskPlanned(100, 1)
	m.TaskPlanned(100, 1)
	m.TaskCompleted()

	persisted := TaskLedger{Planned: 10, Confirmed: 4, Completed: 9, Retried: 1, RowsPlanned: 5000}
	m.RestoreLedger(persisted)
	m.RestoreLedger(persisted) // idempotent
	got := m.Ledger()
	want := TaskLedger{Planned: 10, Confirmed: 4, Completed: 9, Retried: 1, RowsPlanned: 5000}
	if got != want {
		t.Fatalf("after merge into fresh registry: got %+v want %+v", got, want)
	}

	// Live counters already past the persisted values stay untouched.
	m.RestoreLedger(TaskLedger{Planned: 3, Completed: 2})
	if got := m.Ledger(); got.Planned != 10 || got.Completed != 9 {
		t.Fatalf("max-merge regressed live counters: %+v", got)
	}
}
