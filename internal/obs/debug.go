package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// published holds the registry the process-wide expvar export reads from.
// expvar names can only be claimed once per process, so the export is
// installed once and indirected through this pointer; the last registry to
// call PublishExpvar wins.
var (
	published   atomic.Pointer[Registry]
	publishOnce sync.Once
)

// PublishExpvar exposes the registry's snapshot as the expvar variable
// "treeserver_obs" (visible on /debug/vars). Calling it again — or from a
// second registry — repoints the variable rather than panicking on the
// duplicate name.
func (r *Registry) PublishExpvar() {
	if r == nil {
		return
	}
	published.Store(r)
	publishOnce.Do(func() {
		expvar.Publish("treeserver_obs", expvar.Func(func() any {
			return published.Load().Snapshot()
		}))
	})
}

// Handler returns the opt-in debug mux tsserve and tstrain mount:
//
//	/debug/obs     — the JSON Snapshot
//	/debug/vars    — expvar (includes treeserver_obs after PublishExpvar)
//	/debug/pprof/  — the standard pprof handlers
func (r *Registry) Handler() http.Handler {
	r.PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
