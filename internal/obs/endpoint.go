package obs

import (
	"fmt"

	"treeserver/internal/transport"
)

// Endpoint decorates a transport.Endpoint with per-link and per-message-type
// accounting, the same decorator shape as transport.ChaosNetwork.Wrap. It
// also implements transport.RetryReporter, so SendWithRetry re-attempts on a
// wrapped endpoint land in the link's retry counter.
type Endpoint struct {
	inner transport.Endpoint
	reg   *Registry
}

// Wrap decorates ep with the registry's accounting. A nil registry returns
// ep unchanged, so the disabled path has zero indirection.
func (r *Registry) Wrap(ep transport.Endpoint) transport.Endpoint {
	if r == nil {
		return ep
	}
	return &Endpoint{inner: ep, reg: r}
}

// Name implements transport.Endpoint.
func (e *Endpoint) Name() string { return e.inner.Name() }

// Send implements transport.Endpoint: successful sends are counted on the
// from→to link under the payload's concrete type. Byte sizes come from a
// second, measurement-only gob encode over a pooled persistent stream
// (transport.PayloadSize) — telemetry-enabled runs accept that cost; disabled
// runs never construct an obs.Endpoint at all. The measurement encode happens
// BEFORE the inner send: a passthrough fabric delivers the payload pointer
// itself, so once the inner Send returns the receiver may already be
// mutating it (e.g. the master grafting a subtree result).
func (e *Endpoint) Send(to string, payload any) error {
	size := transport.PayloadSize(payload)
	err := e.inner.Send(to, payload)
	if err == nil {
		e.reg.CountSend(e.inner.Name(), to, fmt.Sprintf("%T", payload), size)
	}
	return err
}

// Recv implements transport.Endpoint. Deliveries are not re-counted (the
// sender's decorator already accounted the link); Recv passes through so
// wrapping is transparent to the receive loops.
func (e *Endpoint) Recv() (transport.Envelope, bool) { return e.inner.Recv() }

// Close implements transport.Endpoint.
func (e *Endpoint) Close() error { return e.inner.Close() }

// Stats implements transport.Endpoint.
func (e *Endpoint) Stats() transport.Stats { return e.inner.Stats() }

// SendRetried implements transport.RetryReporter: SendWithRetry calls it
// before each re-attempt.
func (e *Endpoint) SendRetried(to string) { e.reg.CountRetry(e.inner.Name(), to) }

// Unwrap exposes the decorated endpoint so callers can reach optional
// capabilities of the underlying fabric (e.g. TCP peer repointing).
func (e *Endpoint) Unwrap() transport.Endpoint { return e.inner }

var _ transport.Endpoint = (*Endpoint)(nil)
var _ transport.RetryReporter = (*Endpoint)(nil)
