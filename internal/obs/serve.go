package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// ServeObs collects the serving hot path's telemetry: request/error/row
// counts globally and per model, hot-swap events, and a log2-bucketed
// latency histogram that Snapshot turns into p50/p99. One Request call per
// HTTP request — a sync.Map lookup and a handful of atomic adds — keeps the
// zero-alloc predict path zero-alloc. All methods are nil-safe.
type ServeObs struct {
	requests atomic.Int64
	errors   atomic.Int64
	rows     atomic.Int64
	swaps    atomic.Int64

	// Resilience events.
	sheds            atomic.Int64 // requests rejected by the overload gate
	deadlineExceeded atomic.Int64 // requests cut off by deadline/disconnect
	canaryPromotes   atomic.Int64
	canaryRollbacks  atomic.Int64
	drains           atomic.Int64 // graceful shutdowns completed
	drained          atomic.Int64 // inflight requests completed during drains

	// latency[b] counts requests with bits.Len64(ns) == b, i.e. durations in
	// [2^(b-1), 2^b) ns — ~1.4σ resolution per decade, constant memory.
	latency [64]atomic.Int64

	models sync.Map // model name -> *ModelServeObs
}

// ModelServeObs is one model's serving counters.
type ModelServeObs struct {
	requests atomic.Int64
	errors   atomic.Int64
	rows     atomic.Int64
}

// Serve returns the serving collector (nil if r is nil).
func (r *Registry) Serve() *ServeObs {
	if r == nil {
		return nil
	}
	return &r.serve
}

// Request records one predict request: the model it hit, rows scored,
// wall-clock nanoseconds, and whether it failed.
func (s *ServeObs) Request(model string, rows int, ns int64, isErr bool) {
	if s == nil {
		return
	}
	s.requests.Add(1)
	s.rows.Add(int64(rows))
	if ns > 0 {
		s.latency[bits.Len64(uint64(ns))].Add(1)
	}
	if isErr {
		s.errors.Add(1)
	}
	if model == "" {
		return
	}
	var m *ModelServeObs
	if v, ok := s.models.Load(model); ok {
		m = v.(*ModelServeObs)
	} else {
		v, _ := s.models.LoadOrStore(model, &ModelServeObs{})
		m = v.(*ModelServeObs)
	}
	m.requests.Add(1)
	m.rows.Add(int64(rows))
	if isErr {
		m.errors.Add(1)
	}
}

// Swap records one model activation or rollback taking effect.
func (s *ServeObs) Swap() {
	if s == nil {
		return
	}
	s.swaps.Add(1)
}

// Shed records one request rejected by the overload gate.
func (s *ServeObs) Shed() {
	if s == nil {
		return
	}
	s.sheds.Add(1)
}

// DeadlineExceeded records one request cut off by its deadline or by the
// client disconnecting mid-flight.
func (s *ServeObs) DeadlineExceeded() {
	if s == nil {
		return
	}
	s.deadlineExceeded.Add(1)
}

// CanaryPromote records one canary auto-promotion.
func (s *ServeObs) CanaryPromote() {
	if s == nil {
		return
	}
	s.canaryPromotes.Add(1)
}

// CanaryRollback records one canary auto-rollback.
func (s *ServeObs) CanaryRollback() {
	if s == nil {
		return
	}
	s.canaryRollbacks.Add(1)
}

// Drain records one graceful shutdown completing with `completed` inflight
// requests drained rather than dropped.
func (s *ServeObs) Drain(completed int64) {
	if s == nil {
		return
	}
	s.drains.Add(1)
	s.drained.Add(completed)
}

// ServeSnapshot is the serving-path state inside a Snapshot.
type ServeSnapshot struct {
	Requests, Errors, Rows int64
	Swaps                  int64
	// Resilience events.
	Sheds            int64
	DeadlineExceeded int64
	CanaryPromotes   int64
	CanaryRollbacks  int64
	Drains           int64
	DrainedRequests  int64
	// Latency percentiles from the log2 histogram: each is the upper bound
	// of the bucket containing that quantile (≤2× resolution).
	P50Ns, P99Ns int64
	// QPS is Requests over registry uptime.
	QPS    float64
	Models []ModelServeSnapshot // sorted by name
}

// ModelServeSnapshot is one model's serving counters.
type ModelServeSnapshot struct {
	Name                   string
	Requests, Errors, Rows int64
}

// percentile returns the upper bound (ns) of the histogram bucket holding
// quantile q of the recorded requests, 0 if none were recorded.
func (s *ServeObs) percentile(q float64) int64 {
	var total int64
	for i := range s.latency {
		total += s.latency[i].Load()
	}
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range s.latency {
		seen += s.latency[i].Load()
		if seen >= target {
			if i >= 63 {
				return int64(1) << 62 // beyond representable; saturate
			}
			return int64(1) << uint(i)
		}
	}
	return int64(1) << 62
}

// serveSnapshot captures the serving counters; uptimeSeconds feeds QPS.
func (s *ServeObs) snapshot(uptimeSeconds float64) ServeSnapshot {
	out := ServeSnapshot{
		Requests:         s.requests.Load(),
		Errors:           s.errors.Load(),
		Rows:             s.rows.Load(),
		Swaps:            s.swaps.Load(),
		Sheds:            s.sheds.Load(),
		DeadlineExceeded: s.deadlineExceeded.Load(),
		CanaryPromotes:   s.canaryPromotes.Load(),
		CanaryRollbacks:  s.canaryRollbacks.Load(),
		Drains:           s.drains.Load(),
		DrainedRequests:  s.drained.Load(),
		P50Ns:            s.percentile(0.50),
		P99Ns:            s.percentile(0.99),
	}
	if uptimeSeconds > 0 {
		out.QPS = float64(out.Requests) / uptimeSeconds
	}
	s.models.Range(func(k, v any) bool {
		m := v.(*ModelServeObs)
		out.Models = append(out.Models, ModelServeSnapshot{
			Name:     k.(string),
			Requests: m.requests.Load(),
			Errors:   m.errors.Load(),
			Rows:     m.rows.Load(),
		})
		return true
	})
	sort.Slice(out.Models, func(i, j int) bool { return out.Models[i].Name < out.Models[j].Name })
	return out
}
