// Package obs is the live telemetry registry of the TreeServer stack: the
// measured counterpart of the cost model the master schedules by. Where
// loadbal.Matrix holds the *predicted* M_work[worker][{Comp,Send,Recv}]
// charges of Section VI, a Registry accumulates the *observed* quantities —
// comper compute time, send/receive stopwatches, per-link traffic, B_plan
// push behaviour, task lifecycle counts and split-kernel dispatch rates — so
// the two can be compared on a real run.
//
// Every counter is an atomic behind a nil-safe method: a disabled deployment
// passes a nil *Registry (or nil *MasterObs / *WorkerObs / *SplitCounters)
// through the same call sites and pays one pointer check per event, which
// keeps the hot kernels allocation-free and within noise of the
// un-instrumented build.
//
// The registry is exposed three ways: Snapshot() returns a plain
// gob/JSON-serialisable struct for tests and benchtab; Handler() serves the
// snapshot plus expvar and pprof over HTTP (the tsserve/tstrain debug mux);
// Report() renders the end-of-train summary cmd/treeserver prints.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Registry aggregates one deployment's telemetry. All methods are safe for
// concurrent use and safe on a nil receiver (they become no-ops or return
// nil sub-collectors, whose methods are in turn nil-safe).
type Registry struct {
	start time.Time

	master MasterObs
	split  SplitCounters
	serve  ServeObs

	mu      sync.Mutex
	workers map[int]*WorkerObs

	links sync.Map // string "from→to" -> *LinkCounters
	msgs  sync.Map // message type name -> *MsgCounters
}

// NewRegistry returns an empty registry with the uptime clock started.
func NewRegistry() *Registry {
	return &Registry{start: time.Now(), workers: map[int]*WorkerObs{}}
}

// Master returns the master-side collector (nil if r is nil).
func (r *Registry) Master() *MasterObs {
	if r == nil {
		return nil
	}
	return &r.master
}

// Split returns the split-kernel collector (nil if r is nil).
func (r *Registry) Split() *SplitCounters {
	if r == nil {
		return nil
	}
	return &r.split
}

// Worker returns (creating on first use) the collector of one worker. The
// id is the cluster worker index; nil if r is nil.
func (r *Registry) Worker(id int) *WorkerObs {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		w = &WorkerObs{id: id}
		r.workers[id] = w
	}
	return w
}

// LinkCounters counts one directed link's traffic (from→to).
type LinkCounters struct {
	msgs    atomic.Int64
	bytes   atomic.Int64
	retries atomic.Int64
}

// MsgCounters counts one wire message type across all links.
type MsgCounters struct {
	count atomic.Int64
	bytes atomic.Int64
}

func (r *Registry) link(from, to string) *LinkCounters {
	key := from + "→" + to
	if v, ok := r.links.Load(key); ok {
		return v.(*LinkCounters)
	}
	v, _ := r.links.LoadOrStore(key, &LinkCounters{})
	return v.(*LinkCounters)
}

func (r *Registry) msgType(name string) *MsgCounters {
	if v, ok := r.msgs.Load(name); ok {
		return v.(*MsgCounters)
	}
	v, _ := r.msgs.LoadOrStore(name, &MsgCounters{})
	return v.(*MsgCounters)
}

// CountSend records one delivered message on the from→to link.
func (r *Registry) CountSend(from, to, msgType string, bytes int) {
	if r == nil {
		return
	}
	l := r.link(from, to)
	l.msgs.Add(1)
	l.bytes.Add(int64(bytes))
	m := r.msgType(msgType)
	m.count.Add(1)
	m.bytes.Add(int64(bytes))
}

// CountRetry records one send re-attempt on the from→to link.
func (r *Registry) CountRetry(from, to string) {
	if r == nil {
		return
	}
	r.link(from, to).retries.Add(1)
}

// MasterObs collects the master's scheduling telemetry: B_plan behaviour,
// pool occupancy and the task lifecycle (plan → confirm → complete, with
// re-executions and supersessions). All methods are nil-safe.
type MasterObs struct {
	pushesBFS atomic.Int64 // PushTail insertions (|D_x| > τ_dfs)
	pushesDFS atomic.Int64 // PushHead insertions (|D_x| <= τ_dfs)
	requeues  atomic.Int64 // PushHead re-insertions of revoked plans

	dequeDepth atomic.Int64 // live B_plan length gauge
	dequeHigh  atomic.Int64 // high-water mark of dequeDepth
	pool       atomic.Int64 // live n_pool occupancy (trees under construction)
	poolHigh   atomic.Int64

	planned    atomic.Int64 // attempts shipped by assignAndSend
	confirmed  atomic.Int64 // ConfirmSplit decisions
	completed  atomic.Int64 // tasks finished (leaf, split-done or subtree)
	retried    atomic.Int64 // attempts revoked and requeued for re-execution
	superseded atomic.Int64 // attempts revoked without requeue (tree restart)

	rowsPlanned atomic.Int64 // Σ|D_x| over planned attempts
	attemptHigh atomic.Int64 // highest attempt number any task reached

	planNs       atomic.Int64 // plan→decision latency sum (column tasks)
	planSpans    atomic.Int64
	confirmNs    atomic.Int64 // confirm→split-done latency sum
	confirmSpans atomic.Int64

	// Checkpoint/recovery telemetry (the durable-master subsystem).
	ckSnapshots      atomic.Int64 // full snapshot files written
	ckRecords        atomic.Int64 // incremental tree-done records appended
	ckBytes          atomic.Int64 // total bytes written (snapshots + records)
	ckNs             atomic.Int64 // wall time spent writing checkpoints
	ckErrors         atomic.Int64 // failed checkpoint writes (training continues)
	restores         atomic.Int64 // successful checkpoint restores
	restoredTrees    atomic.Int64 // completed trees recovered across restores
	restoreSkipped   atomic.Int64 // whole files skipped as corrupt during restore
	restoreTruncated atomic.Int64 // torn tail records dropped during restore
	treeRestarts     atomic.Int64 // tree restarts (delegate loss recovery)
	treeRestartHigh  atomic.Int64 // most restarts any single tree needed

	// Gray-failure telemetry (straggler scoring / hedging / quarantine).
	hedgesLaunched atomic.Int64 // duplicate attempts shipped by the hedge loop
	hedgesWon      atomic.Int64 // tasks whose winning result came from a hedge
	hedgesWasted   atomic.Int64 // outstanding attempts cancelled because a sibling won
	quarantines    atomic.Int64 // circuit-breaker closed→open transitions
	probesSent     atomic.Int64 // probe messages shipped to workers
	probations     atomic.Int64 // probation passes (half-open→closed restores)

	// Hot-standby telemetry (checkpoint streaming and the failover lease).
	streamRecords atomic.Int64 // checkpoint records queued for the standby
	streamBytes   atomic.Int64 // payload bytes of those records
	streamDropped atomic.Int64 // records dropped on a full stream queue
	streamErrors  atomic.Int64 // records lost to transport send failures
	streamApplied atomic.Int64 // records the replica materialised (standby side)
	streamStale   atomic.Int64 // records the replica discarded as stale (standby side)
	streamLag     atomic.Int64 // gauge: records queued minus records the standby acked
	leaseRenewals atomic.Int64 // renewals the primary shipped
	leaseAcks     atomic.Int64 // acks the primary received back
	leaseLost     atomic.Int64 // primary lease machines that fenced (lapse/higher gen)
	failovers     atomic.Int64 // standby promotions driven to completion

	// Histogram-mode telemetry (bin proposal and top-k vote aggregation).
	binRounds    atomic.Int64 // bin proposal/broadcast rounds completed
	sketchMerges atomic.Int64 // replica quantile summaries merged during bin proposal
	voteMsgs     atomic.Int64 // TopKVoteMsg deliveries accepted
	votes        atomic.Int64 // candidate splits received across those votes
	histsFetched atomic.Int64 // full histograms shipped master-ward on request

	// Elastic-fleet telemetry (live join / graceful drain / rebalancing).
	joins          atomic.Int64 // workers admitted mid-job via the join handshake
	joinRejects    atomic.Int64 // join requests refused (fence, fleet cap, mid-recovery)
	drains         atomic.Int64 // workers gracefully drained and retired
	drainSheds     atomic.Int64 // cordoned workers force-shed past the drain deadline
	rebalancedCols atomic.Int64 // column replicas moved by join/drain rebalancing

	// The health vector is a gauge, not a counter: the master overwrites it
	// each scoring pass, so it lives behind a mutex rather than atomics.
	healthMu         sync.Mutex
	healthScores     []float64 // per-worker median-normalised score, 1 ≈ fleet-typical
	quarantineStates []string  // per-worker circuit state: closed | open | half-open
}

// TaskLedger is the durable subset of the master's task-lifecycle counters:
// what checkpointing persists and a restore max-merges back in, so the
// end-of-train report spans the whole job rather than just the resumed half.
type TaskLedger struct {
	Planned, Confirmed, Completed int64
	Retried, Superseded           int64
	RowsPlanned                   int64
}

// Ledger snapshots the durable counters.
func (m *MasterObs) Ledger() TaskLedger {
	if m == nil {
		return TaskLedger{}
	}
	return TaskLedger{
		Planned:     m.planned.Load(),
		Confirmed:   m.confirmed.Load(),
		Completed:   m.completed.Load(),
		Retried:     m.retried.Load(),
		Superseded:  m.superseded.Load(),
		RowsPlanned: m.rowsPlanned.Load(),
	}
}

// RestoreLedger folds a persisted ledger into the live counters with max
// semantics: each counter becomes max(live, persisted). Max (not add) keeps
// the restore idempotent and correct both for a fresh process (live ≈ 0) and
// an in-process restart that reuses the registry (live ≥ persisted).
func (m *MasterObs) RestoreLedger(l TaskLedger) {
	if m == nil {
		return
	}
	maxMerge := func(c *atomic.Int64, v int64) {
		for {
			cur := c.Load()
			if v <= cur || c.CompareAndSwap(cur, v) {
				return
			}
		}
	}
	maxMerge(&m.planned, l.Planned)
	maxMerge(&m.confirmed, l.Confirmed)
	maxMerge(&m.completed, l.Completed)
	maxMerge(&m.retried, l.Retried)
	maxMerge(&m.superseded, l.Superseded)
	maxMerge(&m.rowsPlanned, l.RowsPlanned)
}

// CheckpointWritten records one durable write: a full snapshot file or an
// appended tree-done record, its size and wall cost.
func (m *MasterObs) CheckpointWritten(snapshot bool, bytes int, d time.Duration) {
	if m == nil {
		return
	}
	if snapshot {
		m.ckSnapshots.Add(1)
	} else {
		m.ckRecords.Add(1)
	}
	m.ckBytes.Add(int64(bytes))
	m.ckNs.Add(int64(d))
}

// CheckpointError records a failed checkpoint write. Training continues —
// durability degrades, correctness does not — so the error is counted rather
// than fatal.
func (m *MasterObs) CheckpointError() {
	if m == nil {
		return
	}
	m.ckErrors.Add(1)
}

// RestoreCompleted records one successful checkpoint restore and how much
// damage the loader routed around.
func (m *MasterObs) RestoreCompleted(trees, skippedFiles, truncatedRecords int) {
	if m == nil {
		return
	}
	m.restores.Add(1)
	m.restoredTrees.Add(int64(trees))
	m.restoreSkipped.Add(int64(skippedFiles))
	m.restoreTruncated.Add(int64(truncatedRecords))
}

// TreeRestarted records one tree restart; restarts is the tree's running
// restart count, tracked as a high-water mark across trees.
func (m *MasterObs) TreeRestarted(restarts int) {
	if m == nil {
		return
	}
	m.treeRestarts.Add(1)
	for {
		hi := m.treeRestartHigh.Load()
		if int64(restarts) <= hi || m.treeRestartHigh.CompareAndSwap(hi, int64(restarts)) {
			return
		}
	}
}

// PlanPushed records one hybrid-policy insertion into B_plan.
func (m *MasterObs) PlanPushed(depthFirst bool) {
	if m == nil {
		return
	}
	if depthFirst {
		m.pushesDFS.Add(1)
	} else {
		m.pushesBFS.Add(1)
	}
}

// PlanRequeued records a revoked plan re-entering B_plan at the head.
func (m *MasterObs) PlanRequeued() {
	if m == nil {
		return
	}
	m.requeues.Add(1)
}

// SetDequeDepth updates the B_plan depth gauge and its high-water mark.
func (m *MasterObs) SetDequeDepth(n int) {
	if m == nil {
		return
	}
	m.dequeDepth.Store(int64(n))
	for {
		hi := m.dequeHigh.Load()
		if int64(n) <= hi || m.dequeHigh.CompareAndSwap(hi, int64(n)) {
			return
		}
	}
}

// SetPool updates the n_pool occupancy gauge and its high-water mark.
func (m *MasterObs) SetPool(n int) {
	if m == nil {
		return
	}
	m.pool.Store(int64(n))
	for {
		hi := m.poolHigh.Load()
		if int64(n) <= hi || m.poolHigh.CompareAndSwap(hi, int64(n)) {
			return
		}
	}
}

// TaskPlanned records one shipped attempt: |D_x| rows, attempt number.
func (m *MasterObs) TaskPlanned(size, attempt int) {
	if m == nil {
		return
	}
	m.planned.Add(1)
	m.rowsPlanned.Add(int64(size))
	for {
		hi := m.attemptHigh.Load()
		if int64(attempt) <= hi || m.attemptHigh.CompareAndSwap(hi, int64(attempt)) {
			break
		}
	}
}

// TaskConfirmed records a ConfirmSplit decision and the plan→decision span.
func (m *MasterObs) TaskConfirmed(sinceAssign time.Duration) {
	if m == nil {
		return
	}
	m.confirmed.Add(1)
	m.planNs.Add(int64(sinceAssign))
	m.planSpans.Add(1)
}

// TaskCompleted records a finished task (leaf, split-done or subtree graft).
func (m *MasterObs) TaskCompleted() {
	if m == nil {
		return
	}
	m.completed.Add(1)
}

// SplitApplied records the delegate's confirm→split-done span.
func (m *MasterObs) SplitApplied(sinceConfirm time.Duration) {
	if m == nil {
		return
	}
	m.confirmNs.Add(int64(sinceConfirm))
	m.confirmSpans.Add(1)
}

// TaskRetried records an attempt revoked and requeued for re-execution
// (task-retry deadline, worker error, extra-trees redraw, fault recovery).
func (m *MasterObs) TaskRetried() {
	if m == nil {
		return
	}
	m.retried.Add(1)
}

// TaskSuperseded records an attempt revoked without requeue: its tree
// restarted from the root (or the job failed), so the attempt is abandoned.
func (m *MasterObs) TaskSuperseded() {
	if m == nil {
		return
	}
	m.superseded.Add(1)
}

// HedgeLaunched records one duplicate attempt shipped because the original
// outlived HedgeFactor × the fleet latency estimate.
func (m *MasterObs) HedgeLaunched() {
	if m == nil {
		return
	}
	m.hedgesLaunched.Add(1)
}

// HedgeWon records a task whose winning result came from a hedged attempt.
func (m *MasterObs) HedgeWon() {
	if m == nil {
		return
	}
	m.hedgesWon.Add(1)
}

// HedgeWasted records one outstanding attempt cancelled because a sibling
// attempt of the same task won the race — duplicated work thrown away.
func (m *MasterObs) HedgeWasted() {
	if m == nil {
		return
	}
	m.hedgesWasted.Add(1)
}

// WorkerQuarantined records one circuit-breaker closed→open transition.
func (m *MasterObs) WorkerQuarantined() {
	if m == nil {
		return
	}
	m.quarantines.Add(1)
}

// ProbeSent records one probation probe shipped to a worker.
func (m *MasterObs) ProbeSent() {
	if m == nil {
		return
	}
	m.probesSent.Add(1)
}

// WorkerRestored records one probation pass: a quarantined worker answered
// its probe at normal speed and re-entered placement (half-open→closed).
func (m *MasterObs) WorkerRestored() {
	if m == nil {
		return
	}
	m.probations.Add(1)
}

// SetWorkerHealth overwrites the per-worker health gauge: scores are
// median-normalised (1 ≈ fleet-typical, lower is slower), states are the
// quarantine circuit states ("closed", "open", "half-open"). Both slices are
// copied.
func (m *MasterObs) SetWorkerHealth(scores []float64, states []string) {
	if m == nil {
		return
	}
	m.healthMu.Lock()
	m.healthScores = append(m.healthScores[:0], scores...)
	m.quarantineStates = append(m.quarantineStates[:0], states...)
	m.healthMu.Unlock()
}

// StreamRecordQueued records one checkpoint record handed to the standby
// stream loop, carrying bytes of payload.
func (m *MasterObs) StreamRecordQueued(bytes int) {
	if m == nil {
		return
	}
	m.streamRecords.Add(1)
	m.streamBytes.Add(int64(bytes))
}

// StreamRecordDropped records a checkpoint record dropped because the stream
// queue was full — the standby heals at the next snapshot.
func (m *MasterObs) StreamRecordDropped() {
	if m == nil {
		return
	}
	m.streamDropped.Add(1)
}

// StreamSendError records a checkpoint record lost to a transport failure.
func (m *MasterObs) StreamSendError() {
	if m == nil {
		return
	}
	m.streamErrors.Add(1)
}

// StreamApplied records the standby replica's running applied/stale record
// counts (overwrite semantics: the replica reports totals, not deltas).
func (m *MasterObs) StreamApplied(applied, stale int64) {
	if m == nil {
		return
	}
	m.streamApplied.Store(applied)
	m.streamStale.Store(stale)
}

// SetStreamLag updates the stream-lag gauge: records the primary queued minus
// records the standby last acknowledged applying.
func (m *MasterObs) SetStreamLag(lag int64) {
	if m == nil {
		return
	}
	m.streamLag.Store(lag)
}

// LeaseRenewed records one lease renewal shipped to the standby.
func (m *MasterObs) LeaseRenewed() {
	if m == nil {
		return
	}
	m.leaseRenewals.Add(1)
}

// LeaseAcked records one renewal acknowledgement received back.
func (m *MasterObs) LeaseAcked() {
	if m == nil {
		return
	}
	m.leaseAcks.Add(1)
}

// LeaseLost records a primary lease machine fencing — its renewals stopped
// being acknowledged (standby gone) or a higher generation was observed.
func (m *MasterObs) LeaseLost() {
	if m == nil {
		return
	}
	m.leaseLost.Add(1)
}

// FailoverCompleted records one standby promotion that drove the job to
// completion.
func (m *MasterObs) FailoverCompleted() {
	if m == nil {
		return
	}
	m.failovers.Add(1)
}

// BinRoundCompleted records one finished bin proposal/broadcast round and how
// many replica sketches the master merged to derive the bins.
func (m *MasterObs) BinRoundCompleted(sketchMerges int) {
	if m == nil {
		return
	}
	m.binRounds.Add(1)
	m.sketchMerges.Add(int64(sketchMerges))
}

// VoteReceived records one accepted TopKVoteMsg carrying n candidate splits.
func (m *MasterObs) VoteReceived(n int) {
	if m == nil {
		return
	}
	m.voteMsgs.Add(1)
	m.votes.Add(int64(n))
}

// HistogramsFetched records n full histograms shipped to the master after a
// top-k election — the only histograms that ever cross the wire.
func (m *MasterObs) HistogramsFetched(n int) {
	if m == nil {
		return
	}
	m.histsFetched.Add(int64(n))
}

// WorkerJoined records one worker admitted mid-job through the elastic join
// handshake (request → accept → replicas landed → ready → admit).
func (m *MasterObs) WorkerJoined() {
	if m == nil {
		return
	}
	m.joins.Add(1)
}

// JoinRejected records one refused join request: generation fence violated,
// fleet cap reached, or the master was mid-recovery.
func (m *MasterObs) JoinRejected() {
	if m == nil {
		return
	}
	m.joinRejects.Add(1)
}

// WorkerDrained records one worker gracefully drained: cordoned, its columns
// handed to survivors, quiesced and retired without failing the job.
func (m *MasterObs) WorkerDrained() {
	if m == nil {
		return
	}
	m.drains.Add(1)
}

// DrainShed records a cordoned worker that would not quiesce before the
// drain deadline (or tripped the quarantine breaker mid-drain) and was
// force-shed through the fail-stop path instead of retired gracefully.
func (m *MasterObs) DrainShed() {
	if m == nil {
		return
	}
	m.drainSheds.Add(1)
}

// ColumnsRebalanced records n column replicas moved between workers by
// join or drain rebalancing (re-replication on fail-stop is counted by the
// retry/requeue ledger instead).
func (m *MasterObs) ColumnsRebalanced(n int) {
	if m == nil {
		return
	}
	m.rebalancedCols.Add(int64(n))
}

// WorkerObs collects one worker's measured cost row — the observed
// M_work[w] = (Comp, Send, Recv) of Section VI — plus row-serving and pool
// behaviour. All methods are nil-safe.
type WorkerObs struct {
	id   int
	comp atomic.Int64 // ns compers spent executing jobs
	send atomic.Int64 // ns spent in (retried) sends
	recv atomic.Int64 // ns the dispatcher spent in message handlers
	jobs atomic.Int64

	rowServes  atomic.Int64 // delegate row-serve requests answered
	rowServeNs atomic.Int64

	rowSetHits   atomic.Int64 // RowSet pool reuses vs fresh allocations
	rowSetMisses atomic.Int64
}

// AddComp charges comper compute time.
func (w *WorkerObs) AddComp(d time.Duration) {
	if w == nil {
		return
	}
	w.comp.Add(int64(d))
	w.jobs.Add(1)
}

// AddSend charges time spent sending (including retries and backoff).
func (w *WorkerObs) AddSend(d time.Duration) {
	if w == nil {
		return
	}
	w.send.Add(int64(d))
}

// AddRecv charges receive-side handler time.
func (w *WorkerObs) AddRecv(d time.Duration) {
	if w == nil {
		return
	}
	w.recv.Add(int64(d))
}

// RowServed records one answered RowsRequest (Section V delegate serving).
func (w *WorkerObs) RowServed(d time.Duration) {
	if w == nil {
		return
	}
	w.rowServes.Add(1)
	w.rowServeNs.Add(int64(d))
}

// RowSetGet records one RowSet pool checkout.
func (w *WorkerObs) RowSetGet(hit bool) {
	if w == nil {
		return
	}
	if hit {
		w.rowSetHits.Add(1)
	} else {
		w.rowSetMisses.Add(1)
	}
}

// SplitCounters collects split-kernel dispatch and scratch-pool telemetry.
// All methods are nil-safe; the counters are bumped once per FindBest call,
// never per row, so the instrumented kernels stay within noise.
type SplitCounters struct {
	fastPath    atomic.Int64 // presorted membership-walk dispatches
	fallback    atomic.Int64 // numeric sort+sweep dispatches
	categorical atomic.Int64 // categorical kernel dispatches

	scratchHits   atomic.Int64 // scratch-pool reuses vs fresh allocations
	scratchMisses atomic.Int64

	histFills atomic.Int64 // histograms accumulated by scanning rows
	histSubs  atomic.Int64 // histograms derived by parent − sibling subtraction
}

// HistFilled records one histogram accumulated by a direct row scan.
func (c *SplitCounters) HistFilled() {
	if c == nil {
		return
	}
	c.histFills.Add(1)
}

// HistSubtracted records one histogram derived by subtracting the cached
// sibling from the cached parent instead of re-scanning rows.
func (c *SplitCounters) HistSubtracted() {
	if c == nil {
		return
	}
	c.histSubs.Add(1)
}

// DispatchFast records one presorted fast-path FindBest call.
func (c *SplitCounters) DispatchFast() {
	if c == nil {
		return
	}
	c.fastPath.Add(1)
}

// DispatchFallback records one numeric sort+sweep FindBest call.
func (c *SplitCounters) DispatchFallback() {
	if c == nil {
		return
	}
	c.fallback.Add(1)
}

// DispatchCategorical records one categorical-kernel FindBest call.
func (c *SplitCounters) DispatchCategorical() {
	if c == nil {
		return
	}
	c.categorical.Add(1)
}

// ScratchGet records one scratch-pool checkout.
func (c *SplitCounters) ScratchGet(hit bool) {
	if c == nil {
		return
	}
	if hit {
		c.scratchHits.Add(1)
	} else {
		c.scratchMisses.Add(1)
	}
}
