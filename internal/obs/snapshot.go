package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of a Registry with plain exported fields,
// so it gob/JSON-serialises without ceremony. Tests assert on it, benchtab
// embeds it, and the debug mux serves it.
type Snapshot struct {
	UptimeSeconds float64
	Master        MasterSnapshot
	Workers       []WorkerSnapshot // sorted by ID
	Links         []LinkSnapshot   // sorted by (From, To)
	Messages      []MessageCount   // sorted by Type
	Split         SplitSnapshot
	Serve         ServeSnapshot
}

// MasterSnapshot is the master-side scheduling state.
type MasterSnapshot struct {
	// B_plan behaviour under the hybrid policy.
	PushesBFS, PushesDFS, Requeues int64
	DequeDepth, DequeHighWater     int64
	// n_pool occupancy (trees under construction).
	PoolOccupancy, PoolHighWater int64
	// Task lifecycle. At quiescence after a successful job,
	// Planned == Completed + Retried + Superseded.
	TasksPlanned, TasksConfirmed, TasksCompleted int64
	TasksRetried, TasksSuperseded                int64
	// Σ|D_x| over planned attempts, and the deepest attempt number reached.
	RowsPlanned, MaxAttempt int64
	// Stage-latency sums: plan→decision and confirm→split-done.
	PlanToDecideNs, PlanToDecideSpans     int64
	ConfirmToSplitNs, ConfirmToSplitSpans int64
	// Checkpoint writes: snapshot files, appended records, bytes, wall time
	// and non-fatal write failures.
	CheckpointSnapshots, CheckpointRecords int64
	CheckpointBytes, CheckpointNs          int64
	CheckpointErrors                       int64
	// Restores: successful recoveries, trees recovered, and damage routed
	// around (files skipped whole, tail records dropped).
	Restores, RestoredTrees                      int64
	RestoreSkippedFiles, RestoreTruncatedRecords int64
	// Tree restarts (delegate-loss recovery), total and per-tree maximum.
	TreeRestarts, TreeRestartMax int64
	// Hedged execution: duplicates launched, races won by the hedge, and
	// attempts cancelled as wasted work.
	HedgesLaunched, HedgesWon, HedgesWasted int64
	// Quarantine circuit breaker: open transitions, probes shipped and
	// probation passes (restores).
	Quarantines, ProbesSent, QuarantineRestores int64
	// Hot standby: checkpoint records streamed (queued/bytes/dropped/send
	// errors), the replica's applied/stale totals, the stream-lag gauge,
	// lease traffic, lease machines fenced and promotions completed.
	StreamRecords, StreamBytes            int64
	StreamDropped, StreamErrors           int64
	StreamApplied, StreamStale, StreamLag int64
	LeaseRenewals, LeaseAcks              int64
	LeaseLost, Failovers                  int64
	// Histogram mode: bin rounds run, replica sketches merged, top-k vote
	// messages (and candidates) accepted, full histograms fetched.
	BinRounds, SketchMerges int64
	VoteMsgs, Votes         int64
	HistogramsFetched       int64
	// Elastic fleet: workers joined mid-job, join requests rejected, workers
	// gracefully drained (and force-shed drains), column replicas moved by
	// join/drain rebalancing.
	Joins, JoinRejects int64
	Drains, DrainSheds int64
	RebalancedColumns  int64
	// Health gauge at snapshot time: per-worker median-normalised scores
	// (1 ≈ fleet-typical, lower is slower) and circuit states.
	HealthScores     []float64
	QuarantineStates []string
}

// WorkerSnapshot is one worker's measured cost row plus pool behaviour.
type WorkerSnapshot struct {
	ID                       int
	CompNs, SendNs, RecvNs   int64
	Jobs                     int64
	RowServes, RowServeNs    int64
	RowSetHits, RowSetMisses int64
}

// LinkSnapshot is one directed link's traffic.
type LinkSnapshot struct {
	From, To             string
	Msgs, Bytes, Retries int64
}

// MessageCount is one wire message type's traffic across all links.
type MessageCount struct {
	Type         string
	Count, Bytes int64
}

// SplitSnapshot is the split-kernel dispatch and scratch-pool telemetry.
type SplitSnapshot struct {
	FastPath, Fallback, Categorical int64
	ScratchHits, ScratchMisses      int64
	// Histogram-kernel accumulation: direct row-scan fills vs histograms
	// derived by parent − sibling subtraction.
	HistFills, HistSubtractions int64
}

// Snapshot copies the registry's current state. Safe on a nil receiver
// (returns the zero Snapshot) and concurrently with ongoing updates —
// individual counters are read atomically, so the result is a consistent
// enough view for invariant checks at quiescence.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Master: MasterSnapshot{
			PushesBFS:               r.master.pushesBFS.Load(),
			PushesDFS:               r.master.pushesDFS.Load(),
			Requeues:                r.master.requeues.Load(),
			DequeDepth:              r.master.dequeDepth.Load(),
			DequeHighWater:          r.master.dequeHigh.Load(),
			PoolOccupancy:           r.master.pool.Load(),
			PoolHighWater:           r.master.poolHigh.Load(),
			TasksPlanned:            r.master.planned.Load(),
			TasksConfirmed:          r.master.confirmed.Load(),
			TasksCompleted:          r.master.completed.Load(),
			TasksRetried:            r.master.retried.Load(),
			TasksSuperseded:         r.master.superseded.Load(),
			RowsPlanned:             r.master.rowsPlanned.Load(),
			MaxAttempt:              r.master.attemptHigh.Load(),
			PlanToDecideNs:          r.master.planNs.Load(),
			PlanToDecideSpans:       r.master.planSpans.Load(),
			ConfirmToSplitNs:        r.master.confirmNs.Load(),
			ConfirmToSplitSpans:     r.master.confirmSpans.Load(),
			CheckpointSnapshots:     r.master.ckSnapshots.Load(),
			CheckpointRecords:       r.master.ckRecords.Load(),
			CheckpointBytes:         r.master.ckBytes.Load(),
			CheckpointNs:            r.master.ckNs.Load(),
			CheckpointErrors:        r.master.ckErrors.Load(),
			Restores:                r.master.restores.Load(),
			RestoredTrees:           r.master.restoredTrees.Load(),
			RestoreSkippedFiles:     r.master.restoreSkipped.Load(),
			RestoreTruncatedRecords: r.master.restoreTruncated.Load(),
			TreeRestarts:            r.master.treeRestarts.Load(),
			TreeRestartMax:          r.master.treeRestartHigh.Load(),
			HedgesLaunched:          r.master.hedgesLaunched.Load(),
			HedgesWon:               r.master.hedgesWon.Load(),
			HedgesWasted:            r.master.hedgesWasted.Load(),
			Quarantines:             r.master.quarantines.Load(),
			ProbesSent:              r.master.probesSent.Load(),
			QuarantineRestores:      r.master.probations.Load(),
			StreamRecords:           r.master.streamRecords.Load(),
			StreamBytes:             r.master.streamBytes.Load(),
			StreamDropped:           r.master.streamDropped.Load(),
			StreamErrors:            r.master.streamErrors.Load(),
			StreamApplied:           r.master.streamApplied.Load(),
			StreamStale:             r.master.streamStale.Load(),
			StreamLag:               r.master.streamLag.Load(),
			LeaseRenewals:           r.master.leaseRenewals.Load(),
			LeaseAcks:               r.master.leaseAcks.Load(),
			LeaseLost:               r.master.leaseLost.Load(),
			Failovers:               r.master.failovers.Load(),
			BinRounds:               r.master.binRounds.Load(),
			SketchMerges:            r.master.sketchMerges.Load(),
			VoteMsgs:                r.master.voteMsgs.Load(),
			Votes:                   r.master.votes.Load(),
			HistogramsFetched:       r.master.histsFetched.Load(),
			Joins:                   r.master.joins.Load(),
			JoinRejects:             r.master.joinRejects.Load(),
			Drains:                  r.master.drains.Load(),
			DrainSheds:              r.master.drainSheds.Load(),
			RebalancedColumns:       r.master.rebalancedCols.Load(),
		},
		Split: SplitSnapshot{
			FastPath:         r.split.fastPath.Load(),
			Fallback:         r.split.fallback.Load(),
			Categorical:      r.split.categorical.Load(),
			ScratchHits:      r.split.scratchHits.Load(),
			ScratchMisses:    r.split.scratchMisses.Load(),
			HistFills:        r.split.histFills.Load(),
			HistSubtractions: r.split.histSubs.Load(),
		},
	}
	s.Serve = r.serve.snapshot(s.UptimeSeconds)

	r.master.healthMu.Lock()
	s.Master.HealthScores = append([]float64(nil), r.master.healthScores...)
	s.Master.QuarantineStates = append([]string(nil), r.master.quarantineStates...)
	r.master.healthMu.Unlock()

	r.mu.Lock()
	for _, w := range r.workers {
		s.Workers = append(s.Workers, WorkerSnapshot{
			ID:           w.id,
			CompNs:       w.comp.Load(),
			SendNs:       w.send.Load(),
			RecvNs:       w.recv.Load(),
			Jobs:         w.jobs.Load(),
			RowServes:    w.rowServes.Load(),
			RowServeNs:   w.rowServeNs.Load(),
			RowSetHits:   w.rowSetHits.Load(),
			RowSetMisses: w.rowSetMisses.Load(),
		})
	}
	r.mu.Unlock()
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].ID < s.Workers[j].ID })

	r.links.Range(func(k, v any) bool {
		lc := v.(*LinkCounters)
		key := k.(string)
		from, to, _ := strings.Cut(key, "→")
		s.Links = append(s.Links, LinkSnapshot{
			From: from, To: to,
			Msgs: lc.msgs.Load(), Bytes: lc.bytes.Load(), Retries: lc.retries.Load(),
		})
		return true
	})
	sort.Slice(s.Links, func(i, j int) bool {
		if s.Links[i].From != s.Links[j].From {
			return s.Links[i].From < s.Links[j].From
		}
		return s.Links[i].To < s.Links[j].To
	})

	r.msgs.Range(func(k, v any) bool {
		mc := v.(*MsgCounters)
		s.Messages = append(s.Messages, MessageCount{
			Type: k.(string), Count: mc.count.Load(), Bytes: mc.bytes.Load(),
		})
		return true
	})
	sort.Slice(s.Messages, func(i, j int) bool { return s.Messages[i].Type < s.Messages[j].Type })
	return s
}

// MWork returns the measured cost matrix in the same shape and units as
// loadbal.Matrix.Snapshot(): one row per worker (aligned with s.Workers),
// columns Comp/Send/Recv in seconds.
func (s Snapshot) MWork() [][3]float64 {
	out := make([][3]float64, len(s.Workers))
	for i, w := range s.Workers {
		out[i] = [3]float64{
			float64(w.CompNs) / 1e9,
			float64(w.SendNs) / 1e9,
			float64(w.RecvNs) / 1e9,
		}
	}
	return out
}

// Retries sums re-attempted sends across all links.
func (s Snapshot) Retries() int64 {
	var n int64
	for _, l := range s.Links {
		n += l.Retries
	}
	return n
}

// Report renders the end-of-train summary cmd/treeserver prints: the
// measured M_work matrix, B_plan behaviour, the task-lifecycle ledger and
// the heaviest links and message types.
func (s Snapshot) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== telemetry (%.2fs) ===\n", s.UptimeSeconds)

	m := s.Master
	fmt.Fprintf(&b, "tasks: planned %d, confirmed %d, completed %d, retried %d, superseded %d (max attempt %d, Σ|D_x| %d)\n",
		m.TasksPlanned, m.TasksConfirmed, m.TasksCompleted, m.TasksRetried, m.TasksSuperseded, m.MaxAttempt, m.RowsPlanned)
	fmt.Fprintf(&b, "B_plan: %d bfs / %d dfs pushes, %d requeues, high-water %d; n_pool high-water %d\n",
		m.PushesBFS, m.PushesDFS, m.Requeues, m.DequeHighWater, m.PoolHighWater)
	if m.PlanToDecideSpans > 0 {
		fmt.Fprintf(&b, "spans: plan→decide avg %s over %d", time.Duration(m.PlanToDecideNs/m.PlanToDecideSpans), m.PlanToDecideSpans)
		if m.ConfirmToSplitSpans > 0 {
			fmt.Fprintf(&b, ", confirm→split avg %s over %d", time.Duration(m.ConfirmToSplitNs/m.ConfirmToSplitSpans), m.ConfirmToSplitSpans)
		}
		b.WriteString("\n")
	}
	if m.CheckpointSnapshots+m.CheckpointRecords > 0 {
		fmt.Fprintf(&b, "checkpoint: %d snapshots, %d records, %d bytes in %s (%d write errors)\n",
			m.CheckpointSnapshots, m.CheckpointRecords, m.CheckpointBytes, time.Duration(m.CheckpointNs), m.CheckpointErrors)
	}
	if m.Restores > 0 {
		fmt.Fprintf(&b, "recovery: %d restore(s), %d trees recovered; %d corrupt files skipped, %d torn records dropped\n",
			m.Restores, m.RestoredTrees, m.RestoreSkippedFiles, m.RestoreTruncatedRecords)
	}
	if m.TreeRestarts > 0 {
		fmt.Fprintf(&b, "tree restarts: %d total, worst tree %d\n", m.TreeRestarts, m.TreeRestartMax)
	}
	if m.HedgesLaunched > 0 {
		fmt.Fprintf(&b, "hedging: %d launched, %d won, %d wasted\n",
			m.HedgesLaunched, m.HedgesWon, m.HedgesWasted)
	}
	if m.Quarantines > 0 || m.ProbesSent > 0 {
		fmt.Fprintf(&b, "quarantine: %d opened, %d restored, %d probes\n",
			m.Quarantines, m.QuarantineRestores, m.ProbesSent)
	}
	if m.StreamRecords+m.StreamDropped > 0 || m.LeaseRenewals > 0 || m.Failovers > 0 {
		fmt.Fprintf(&b, "standby: %d records streamed (%d bytes, %d dropped, %d send errors), replica applied %d / stale %d, lag %d; lease %d renewals / %d acks, %d lost; %d failover(s)\n",
			m.StreamRecords, m.StreamBytes, m.StreamDropped, m.StreamErrors,
			m.StreamApplied, m.StreamStale, m.StreamLag,
			m.LeaseRenewals, m.LeaseAcks, m.LeaseLost, m.Failovers)
	}
	if m.BinRounds > 0 {
		fmt.Fprintf(&b, "hist mode: %d bin round(s) merging %d sketches; %d vote msgs carrying %d candidates; %d histograms fetched\n",
			m.BinRounds, m.SketchMerges, m.VoteMsgs, m.Votes, m.HistogramsFetched)
	}
	if m.Joins+m.JoinRejects+m.Drains+m.DrainSheds > 0 {
		fmt.Fprintf(&b, "elastic: %d join(s), %d rejected, %d drain(s) (%d force-shed), %d columns rebalanced\n",
			m.Joins, m.JoinRejects, m.Drains, m.DrainSheds, m.RebalancedColumns)
	}
	if len(m.HealthScores) > 0 {
		b.WriteString("worker health:")
		for w, sc := range m.HealthScores {
			fmt.Fprintf(&b, " w%d=%.2f", w, sc)
			if w < len(m.QuarantineStates) && m.QuarantineStates[w] != "closed" {
				fmt.Fprintf(&b, "(%s)", m.QuarantineStates[w])
			}
		}
		b.WriteString("\n")
	}

	if len(s.Workers) > 0 {
		b.WriteString("measured M_work (seconds):\n")
		b.WriteString("  worker      comp      send      recv   jobs  row-serves  rowset hit/miss\n")
		for _, w := range s.Workers {
			fmt.Fprintf(&b, "  w%-5d %9.3f %9.3f %9.3f %6d %11d  %d/%d\n",
				w.ID, float64(w.CompNs)/1e9, float64(w.SendNs)/1e9, float64(w.RecvNs)/1e9,
				w.Jobs, w.RowServes, w.RowSetHits, w.RowSetMisses)
		}
	}

	sp := s.Split
	if sp.FastPath+sp.Fallback+sp.Categorical > 0 {
		fmt.Fprintf(&b, "split kernels: %d presorted fast-path, %d sort+sweep, %d categorical; scratch pool %d/%d hit/miss\n",
			sp.FastPath, sp.Fallback, sp.Categorical, sp.ScratchHits, sp.ScratchMisses)
	}
	if sp.HistFills+sp.HistSubtractions > 0 {
		fmt.Fprintf(&b, "hist kernel: %d fills, %d subtraction hits\n", sp.HistFills, sp.HistSubtractions)
	}

	if sv := s.Serve; sv.Requests > 0 {
		fmt.Fprintf(&b, "serving: %d requests (%d errors, %d rows, %d swaps), %.1f qps, p50 ≤%s p99 ≤%s\n",
			sv.Requests, sv.Errors, sv.Rows, sv.Swaps, sv.QPS,
			time.Duration(sv.P50Ns), time.Duration(sv.P99Ns))
		for _, mdl := range sv.Models {
			fmt.Fprintf(&b, "  model %-16s %8d requests %6d errors %10d rows\n",
				mdl.Name, mdl.Requests, mdl.Errors, mdl.Rows)
		}
	}
	if sv := s.Serve; sv.Sheds+sv.DeadlineExceeded+sv.CanaryPromotes+sv.CanaryRollbacks+sv.Drains > 0 {
		fmt.Fprintf(&b, "resilience: %d shed, %d deadline-exceeded, %d canary promotes, %d canary rollbacks, %d drains (%d requests drained)\n",
			sv.Sheds, sv.DeadlineExceeded, sv.CanaryPromotes, sv.CanaryRollbacks, sv.Drains, sv.DrainedRequests)
	}

	if len(s.Links) > 0 {
		links := append([]LinkSnapshot(nil), s.Links...)
		sort.Slice(links, func(i, j int) bool { return links[i].Bytes > links[j].Bytes })
		if len(links) > 8 {
			links = links[:8]
		}
		b.WriteString("heaviest links:\n")
		for _, l := range links {
			fmt.Fprintf(&b, "  %-8s → %-8s %8d msgs %12d bytes %5d retries\n", l.From, l.To, l.Msgs, l.Bytes, l.Retries)
		}
	}

	if len(s.Messages) > 0 {
		msgs := append([]MessageCount(nil), s.Messages...)
		sort.Slice(msgs, func(i, j int) bool { return msgs[i].Bytes > msgs[j].Bytes })
		if len(msgs) > 8 {
			msgs = msgs[:8]
		}
		b.WriteString("heaviest message types:\n")
		for _, mc := range msgs {
			fmt.Fprintf(&b, "  %-24s %8d msgs %12d bytes\n", mc.Type, mc.Count, mc.Bytes)
		}
	}
	return b.String()
}
