package dataset

import (
	"fmt"
)

// Task is the learning problem a table's target defines.
type Task uint8

const (
	// Classification predicts a categorical Y.
	Classification Task = iota
	// Regression predicts a numeric Y.
	Regression
)

// String implements fmt.Stringer.
func (t Task) String() string {
	if t == Classification {
		return "classification"
	}
	return "regression"
}

// Table is a columnar data table with a designated prediction target Y.
// All columns must have the same length.
type Table struct {
	Cols   []*Column
	Target int // index into Cols of the Y column
}

// NewTable builds a table and validates column lengths and the target index.
func NewTable(cols []*Column, target int) (*Table, error) {
	t := &Table{Cols: cols, Target: target}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustNewTable is NewTable that panics on error, for tests and generators.
func MustNewTable(cols []*Column, target int) *Table {
	t, err := NewTable(cols, target)
	if err != nil {
		panic(err)
	}
	return t
}

// Validate checks the structural invariants of the table.
func (t *Table) Validate() error {
	if len(t.Cols) == 0 {
		return fmt.Errorf("table: no columns")
	}
	if t.Target < 0 || t.Target >= len(t.Cols) {
		return fmt.Errorf("table: target index %d out of range [0,%d)", t.Target, len(t.Cols))
	}
	n := t.Cols[0].Len()
	for _, c := range t.Cols {
		if c.Len() != n {
			return fmt.Errorf("table: column %q has %d rows, want %d", c.Name, c.Len(), n)
		}
		if err := c.Validate(); err != nil {
			return err
		}
	}
	if t.Y().MissingCount() > 0 {
		return fmt.Errorf("table: target column %q has missing values", t.Y().Name)
	}
	return nil
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.Cols[0].Len() }

// NumCols returns the number of columns including the target.
func (t *Table) NumCols() int { return len(t.Cols) }

// Y returns the target column.
func (t *Table) Y() *Column { return t.Cols[t.Target] }

// Task returns the learning task implied by the target column's kind.
func (t *Table) Task() Task {
	if t.Y().Kind == Categorical {
		return Classification
	}
	return Regression
}

// NumClasses returns the number of target classes for classification tables
// and 0 for regression tables.
func (t *Table) NumClasses() int {
	if t.Task() != Classification {
		return 0
	}
	return t.Y().NumLevels()
}

// FeatureIndexes returns the indexes of all non-target columns, in order.
func (t *Table) FeatureIndexes() []int {
	idx := make([]int, 0, len(t.Cols)-1)
	for i := range t.Cols {
		if i != t.Target {
			idx = append(idx, i)
		}
	}
	return idx
}

// ColumnByName returns the first column with the given name, or nil.
func (t *Table) ColumnByName(name string) *Column {
	for _, c := range t.Cols {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Gather returns a new table restricted to the given rows (in order). It is
// how a subtree-task materialises D_x once all column shards arrive.
func (t *Table) Gather(rows []int32) *Table {
	cols := make([]*Column, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = c.Gather(rows)
	}
	return &Table{Cols: cols, Target: t.Target}
}

// Split partitions the table's rows into two tables: rows where keep reports
// true go left, the rest right. Used by row-partitioned baselines and tests.
func (t *Table) Split(keep func(row int) bool) (left, right *Table) {
	var l, r []int32
	for i := 0; i < t.NumRows(); i++ {
		if keep(i) {
			l = append(l, int32(i))
		} else {
			r = append(r, int32(i))
		}
	}
	return t.Gather(l), t.Gather(r)
}

// RowSlices cuts [0, n) into p nearly-equal contiguous row ranges, the row
// partitioning used by the PLANET baseline and deep-forest extraction jobs.
func RowSlices(n, p int) [][2]int {
	if p <= 0 {
		p = 1
	}
	out := make([][2]int, 0, p)
	base, rem := n/p, n%p
	start := 0
	for i := 0; i < p; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, [2]int{start, start + size})
		start += size
	}
	return out
}

// AllRows returns the identity row-index slice [0, 1, ..., n-1].
func AllRows(n int) []int32 {
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	return rows
}
