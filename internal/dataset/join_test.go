package dataset

import (
	"testing"
)

// loanTables builds a miniature version of the Appendix-G inputs: an
// origination table keyed by loan id and a monthly performance table with
// several rows per loan.
func loanTables(t *testing.T) (orig, perf *Table) {
	t.Helper()
	loanIDs := []string{"L1", "L2", "L3", "L4"}
	origKey := NewCategorical("LOAN_SEQUENCE_NUMBER", []int32{0, 1, 2, 3}, loanIDs)
	credit := NewNumeric("CreditScore", []float64{700, 620, 780, 560})
	rate := NewNumeric("Rate", []float64{3.5, 4.2, 3.1, 5.0})
	sparse := NewNumeric("MostlyMissing", []float64{0, 0, 0, 1})
	for i := 0; i < 3; i++ {
		sparse.SetMissing(i) // 75%+ missing
	}
	orig = MustNewTable([]*Column{origKey, credit, rate, sparse}, 1) // temp target

	// Performance: L1 x2, L2 x1, L3 x2; L4 absent (inner join drops it);
	// one extra loan L9 on the right with no origination row.
	perfKey := NewCategorical("LOAN_SEQUENCE_NUMBER", []int32{0, 0, 1, 2, 2, 4},
		[]string{"L1", "L2", "L3", "L4", "L9"})
	perfKey.Cats = []int32{0, 0, 1, 2, 2, 4}
	balance := NewNumeric("Balance", []float64{100, 90, 200, 300, 290, 999})
	delinquent := NewCategorical("Delinquent", []int32{0, 0, 1, 0, 0, 1}, []string{"No", "Yes"})
	perf = MustNewTable([]*Column{perfKey, balance, delinquent}, 2)
	return orig, perf
}

func TestJoinInner(t *testing.T) {
	orig, perf := loanTables(t)
	joined, err := Join(orig, perf, "LOAN_SEQUENCE_NUMBER", "LOAN_SEQUENCE_NUMBER", "Delinquent")
	if err != nil {
		t.Fatal(err)
	}
	// L1 x2 + L2 x1 + L3 x2 = 5 joined rows; L4 and L9 drop out.
	if joined.NumRows() != 5 {
		t.Fatalf("joined rows = %d, want 5", joined.NumRows())
	}
	// Columns: 4 left + 2 right (right key dropped).
	if joined.NumCols() != 6 {
		t.Fatalf("joined cols = %d, want 6", joined.NumCols())
	}
	if joined.Y().Name != "Delinquent" {
		t.Fatalf("target = %q", joined.Y().Name)
	}
	// L2's single row carries CreditScore 620 and Delinquent Yes.
	found := false
	key := joined.ColumnByName("LOAN_SEQUENCE_NUMBER")
	for r := 0; r < joined.NumRows(); r++ {
		if key.Levels[key.Cat(r)] == "L2" {
			found = true
			if joined.ColumnByName("CreditScore").Float(r) != 620 {
				t.Fatal("L2 row carries wrong origination data")
			}
			if joined.Y().Cat(r) != 1 {
				t.Fatal("L2 row carries wrong label")
			}
		}
	}
	if !found {
		t.Fatal("L2 missing from join")
	}
}

func TestJoinErrors(t *testing.T) {
	orig, perf := loanTables(t)
	if _, err := Join(orig, perf, "nope", "LOAN_SEQUENCE_NUMBER", "Delinquent"); err == nil {
		t.Fatal("bad left key accepted")
	}
	if _, err := Join(orig, perf, "LOAN_SEQUENCE_NUMBER", "nope", "Delinquent"); err == nil {
		t.Fatal("bad right key accepted")
	}
	if _, err := Join(orig, perf, "LOAN_SEQUENCE_NUMBER", "LOAN_SEQUENCE_NUMBER", "nope"); err == nil {
		t.Fatal("bad target accepted")
	}
}

func TestJoinSkipsMissingKeys(t *testing.T) {
	orig, perf := loanTables(t)
	orig.ColumnByName("LOAN_SEQUENCE_NUMBER").SetMissing(0) // L1 key missing
	joined, err := Join(orig, perf, "LOAN_SEQUENCE_NUMBER", "LOAN_SEQUENCE_NUMBER", "Delinquent")
	if err != nil {
		t.Fatal(err)
	}
	if joined.NumRows() != 3 { // L1's two matches gone
		t.Fatalf("rows = %d, want 3", joined.NumRows())
	}
}

func TestDropSparseColumns(t *testing.T) {
	orig, _ := loanTables(t)
	pruned := DropSparseColumns(orig, 0.5)
	if pruned.ColumnByName("MostlyMissing") != nil {
		t.Fatal("sparse column survived")
	}
	if pruned.ColumnByName("CreditScore") == nil {
		t.Fatal("dense column dropped")
	}
	if pruned.Y().Name != orig.Y().Name {
		t.Fatal("target lost")
	}
	// Never drops the target, even if sparse-looking.
	lenient := DropSparseColumns(orig, 0.9)
	if lenient.NumCols() != orig.NumCols() {
		t.Fatal("lenient threshold dropped columns")
	}
}

func TestPrepareLoanStyle(t *testing.T) {
	orig, perf := loanTables(t)
	tbl, err := PrepareLoanStyle(orig, perf, "LOAN_SEQUENCE_NUMBER", "Delinquent")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ColumnByName("LOAN_SEQUENCE_NUMBER") != nil {
		t.Fatal("join key survived preprocessing")
	}
	if tbl.ColumnByName("MostlyMissing") != nil {
		t.Fatal("sparse column survived preprocessing")
	}
	for _, c := range tbl.Cols {
		if c.MissingCount() != 0 {
			t.Fatalf("column %q still has missing values", c.Name)
		}
	}
	if tbl.Task() != Classification || tbl.Y().Name != "Delinquent" {
		t.Fatal("target wrong after preprocessing")
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
}
