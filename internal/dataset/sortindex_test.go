package dataset

import (
	"math/rand"
	"sync"
	"testing"
)

func TestSortIndexOrdersValuesMissingLast(t *testing.T) {
	c := NewNumeric("x", []float64{5, 1, 3, 2, 4, 9, 0})
	c.SetMissing(2)
	c.SetMissing(5)
	idx := c.SortIndex()
	if len(idx) != 7 {
		t.Fatalf("index length %d, want 7", len(idx))
	}
	presentN := 5
	for i := 1; i < presentN; i++ {
		a, b := idx[i-1], idx[i]
		if c.Floats[a] > c.Floats[b] {
			t.Fatalf("values out of order at %d: %g > %g", i, c.Floats[a], c.Floats[b])
		}
	}
	for i := presentN; i < len(idx); i++ {
		if !c.IsMissing(int(idx[i])) {
			t.Fatalf("row %d at tail position %d is not missing", idx[i], i)
		}
	}
	for i := presentN + 1; i < len(idx); i++ {
		if idx[i-1] >= idx[i] {
			t.Fatalf("missing tail not ordered by row id: %d >= %d", idx[i-1], idx[i])
		}
	}
}

func TestSortIndexRowTiebreakAndCaching(t *testing.T) {
	c := NewNumeric("x", []float64{2, 1, 2, 1, 2})
	idx := c.SortIndex()
	want := []int32{1, 3, 0, 2, 4}
	for i, r := range want {
		if idx[i] != r {
			t.Fatalf("idx = %v, want %v", idx, want)
		}
	}
	if !c.HasSortIndex() {
		t.Fatal("index not cached after build")
	}
	if c.SortIndexBytes() != 4*5 {
		t.Fatalf("SortIndexBytes = %d, want 20", c.SortIndexBytes())
	}
	idx2 := c.SortIndex()
	if &idx[0] != &idx2[0] {
		t.Fatal("second call rebuilt the index instead of reusing the cache")
	}
}

func TestSortIndexCategoricalNil(t *testing.T) {
	c := NewCategorical("c", []int32{0, 1}, []string{"a", "b"})
	if c.SortIndex() != nil {
		t.Fatal("categorical column returned a sort index")
	}
	if c.SortIndexBytes() != 0 {
		t.Fatal("categorical column reports index bytes")
	}
}

func TestSortIndexFreshAfterGatherAndClone(t *testing.T) {
	c := NewNumeric("x", []float64{3, 1, 2})
	_ = c.SortIndex()
	g := c.Gather([]int32{2, 0})
	if g.HasSortIndex() {
		t.Fatal("gathered shard inherited the parent's sort index")
	}
	gi := g.SortIndex()
	if gi[0] != 0 || gi[1] != 1 { // shard values are [2, 3]
		t.Fatalf("shard index %v, want [0 1]", gi)
	}
	cl := c.Clone()
	if cl.HasSortIndex() {
		t.Fatal("clone inherited the cached sort index")
	}
}

func TestSortIndexConcurrentBuild(t *testing.T) {
	vals := make([]float64, 5000)
	rng := rand.New(rand.NewSource(7))
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	c := NewNumeric("x", vals)
	var wg sync.WaitGroup
	results := make([][]int32, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = c.SortIndex()
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range results[0] {
			if results[0][i] != results[g][i] {
				t.Fatalf("goroutine %d saw a different permutation at %d", g, i)
			}
		}
	}
}
