package dataset

// RowSet is a counted membership set over the rows of one table: counts[r]
// is the multiplicity of row r in the current node's row set I_x. Split
// finders walk a column's presorted SortIndex filtered through a RowSet to
// evaluate dense nodes in O(tableRows) with no sorting and no allocation.
//
// Multiplicities matter: bootstrap bags sample rows with replacement, so a
// plain bitmap would silently deduplicate bagged rows and change every
// impurity downstream. A RowSet holds whatever multiset its Add/AddAll calls
// built.
//
// A RowSet is not safe for concurrent mutation; each tree builder or comper
// owns one and reuses it across nodes via AddAll/RemoveAll pairs, which cost
// O(|rows|) rather than the O(tableRows) of a full Reset.
type RowSet struct {
	counts []int32
	n      int
}

// NewRowSet returns an empty RowSet over tables of numRows rows.
func NewRowSet(numRows int) *RowSet {
	return &RowSet{counts: make([]int32, numRows)}
}

// RowSetOf builds a RowSet holding the given row multiset.
func RowSetOf(rows []int32, numRows int) *RowSet {
	s := NewRowSet(numRows)
	s.AddAll(rows)
	return s
}

// Cap returns the table size the set indexes over.
func (s *RowSet) Cap() int { return len(s.counts) }

// Len returns the total multiplicity (|I_x| counting duplicates).
func (s *RowSet) Len() int { return s.n }

// Count returns the multiplicity of row r.
func (s *RowSet) Count(r int32) int32 { return s.counts[r] }

// Contains reports whether row r has multiplicity >= 1.
func (s *RowSet) Contains(r int32) bool { return s.counts[r] > 0 }

// Add increments row r's multiplicity.
func (s *RowSet) Add(r int32) {
	s.counts[r]++
	s.n++
}

// Remove decrements row r's multiplicity. Removing a row that is not in the
// set leaves a negative count; callers must pair Remove with a prior Add.
func (s *RowSet) Remove(r int32) {
	s.counts[r]--
	s.n--
}

// AddAll adds every row of the slice (duplicates accumulate).
func (s *RowSet) AddAll(rows []int32) {
	for _, r := range rows {
		s.counts[r]++
	}
	s.n += len(rows)
}

// RemoveAll removes every row of the slice, undoing a matching AddAll.
func (s *RowSet) RemoveAll(rows []int32) {
	for _, r := range rows {
		s.counts[r]--
	}
	s.n -= len(rows)
}

// Reset clears the set in O(Cap). Prefer RemoveAll with the rows previously
// added when reusing a set across nodes.
func (s *RowSet) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.n = 0
}
