// Package dataset defines the tabular data model used throughout TreeServer:
// typed columns with missing-value bitmaps, tables binding columns to a
// prediction target, and CSV ingestion with schema inference.
//
// TreeServer partitions data by column, so Column is the unit of storage,
// shipping and splitting: a worker that holds a column can compute that
// column's best split condition without talking to any other machine.
package dataset

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Kind discriminates the two attribute types the paper supports: ordinal
// (numeric) attributes split by "Ai <= v", and categorical attributes split
// by "Ai in Sl".
type Kind uint8

const (
	// Numeric marks an ordinal attribute stored as float64 values.
	Numeric Kind = iota
	// Categorical marks a discrete attribute stored as int32 level codes.
	Categorical
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Column is a single attribute of a data table. Exactly one of Floats or
// Cats is populated, according to Kind. Missing values are tracked in a
// bitmap so that the backing slices stay dense and cheap to subset.
//
// Columns are value-shippable: the zero value is an empty column, and all
// fields are exported for gob encoding when workers exchange column data.
type Column struct {
	Name   string
	Kind   Kind
	Floats []float64 // numeric values; NaN also counts as missing
	Cats   []int32   // categorical level codes in [0, len(Levels))
	Levels []string  // categorical level names; nil for numeric columns
	Miss   []uint64  // missing bitmap, bit i => row i is missing; nil if none

	// sortIdx caches SortIndex's presorted permutation. It is unexported so
	// gob transfers never ship it: a freshly received replica or gathered
	// shard rebuilds the index lazily on first use.
	sortIdx atomic.Pointer[[]int32]
}

// NewNumeric builds a numeric column over values. The slice is retained, not
// copied. NaN entries are recorded as missing.
func NewNumeric(name string, values []float64) *Column {
	c := &Column{Name: name, Kind: Numeric, Floats: values}
	for i, v := range values {
		if math.IsNaN(v) {
			c.SetMissing(i)
		}
	}
	return c
}

// NewCategorical builds a categorical column over level codes. Codes must be
// in [0, len(levels)) for non-missing rows; use SetMissing for missing rows.
func NewCategorical(name string, codes []int32, levels []string) *Column {
	return &Column{Name: name, Kind: Categorical, Cats: codes, Levels: levels}
}

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	if c.Kind == Numeric {
		return len(c.Floats)
	}
	return len(c.Cats)
}

// NumLevels returns the number of categorical levels (0 for numeric columns).
func (c *Column) NumLevels() int { return len(c.Levels) }

// IsMissing reports whether the value at row i is missing.
func (c *Column) IsMissing(i int) bool {
	if c.Miss == nil {
		return false
	}
	w := i >> 6
	if w >= len(c.Miss) {
		return false
	}
	return c.Miss[w]&(1<<(uint(i)&63)) != 0
}

// SetMissing marks row i as missing, growing the bitmap as needed.
func (c *Column) SetMissing(i int) {
	w := i >> 6
	if w >= len(c.Miss) {
		grown := make([]uint64, w+1)
		copy(grown, c.Miss)
		c.Miss = grown
	}
	c.Miss[w] |= 1 << (uint(i) & 63)
}

// MissingCount returns the number of missing rows.
func (c *Column) MissingCount() int {
	n := 0
	for _, w := range c.Miss {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Float returns the numeric value at row i. It panics on categorical columns.
func (c *Column) Float(i int) float64 {
	if c.Kind != Numeric {
		panic("dataset: Float on categorical column " + c.Name)
	}
	return c.Floats[i]
}

// Cat returns the categorical code at row i. It panics on numeric columns.
func (c *Column) Cat(i int) int32 {
	if c.Kind != Categorical {
		panic("dataset: Cat on numeric column " + c.Name)
	}
	return c.Cats[i]
}

// Gather returns a new column holding the values of this column at the given
// rows, in order. Missing flags are carried over. This is the operation a
// data-serving worker performs when a key worker requests the rows I_x of a
// column for a subtree-task.
func (c *Column) Gather(rows []int32) *Column {
	out := &Column{Name: c.Name, Kind: c.Kind, Levels: c.Levels}
	switch c.Kind {
	case Numeric:
		out.Floats = make([]float64, len(rows))
		for i, r := range rows {
			out.Floats[i] = c.Floats[r]
		}
	case Categorical:
		out.Cats = make([]int32, len(rows))
		for i, r := range rows {
			out.Cats[i] = c.Cats[r]
		}
	}
	if c.Miss != nil {
		for i, r := range rows {
			if c.IsMissing(int(r)) {
				out.SetMissing(i)
			}
		}
	}
	return out
}

// Clone returns a deep copy of the column.
func (c *Column) Clone() *Column {
	out := &Column{Name: c.Name, Kind: c.Kind}
	if c.Floats != nil {
		out.Floats = append([]float64(nil), c.Floats...)
	}
	if c.Cats != nil {
		out.Cats = append([]int32(nil), c.Cats...)
	}
	if c.Levels != nil {
		out.Levels = append([]string(nil), c.Levels...)
	}
	if c.Miss != nil {
		out.Miss = append([]uint64(nil), c.Miss...)
	}
	return out
}

// ByteSize estimates the in-memory footprint of the column payload, used by
// the transport layer's bandwidth accounting.
func (c *Column) ByteSize() int {
	n := 8*len(c.Floats) + 4*len(c.Cats) + 8*len(c.Miss)
	for _, l := range c.Levels {
		n += len(l)
	}
	return n + len(c.Name)
}

// Validate checks internal consistency and returns a descriptive error on
// the first violation found.
func (c *Column) Validate() error {
	switch c.Kind {
	case Numeric:
		if c.Cats != nil || c.Levels != nil {
			return fmt.Errorf("column %q: numeric column has categorical payload", c.Name)
		}
	case Categorical:
		if c.Floats != nil {
			return fmt.Errorf("column %q: categorical column has numeric payload", c.Name)
		}
		for i, code := range c.Cats {
			if c.IsMissing(i) {
				continue
			}
			if code < 0 || int(code) >= len(c.Levels) {
				return fmt.Errorf("column %q: row %d code %d out of range [0,%d)", c.Name, i, code, len(c.Levels))
			}
		}
	default:
		return fmt.Errorf("column %q: unknown kind %d", c.Name, c.Kind)
	}
	return nil
}
