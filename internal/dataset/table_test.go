package dataset

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// fig1Table reproduces the paper's Fig. 1(a) customer table.
func fig1Table(t *testing.T) *Table {
	t.Helper()
	age := NewNumeric("Age", []float64{24, 28, 44, 32, 36, 48, 37, 42, 54, 47})
	eduLevels := []string{"Primary", "Secondary", "Bachelor", "Master", "PhD"}
	edu := NewCategorical("Education", []int32{2, 3, 2, 1, 4, 2, 1, 2, 1, 4}, eduLevels)
	owner := NewCategorical("HomeOwner", []int32{0, 1, 1, 1, 0, 1, 0, 0, 0, 1}, []string{"No", "Yes"})
	income := NewNumeric("Income", []float64{5000, 7500, 5500, 6000, 10000, 6500, 3000, 6000, 4000, 8000})
	def := NewCategorical("Default", []int32{0, 0, 0, 1, 0, 0, 1, 0, 1, 0}, []string{"No", "Yes"})
	tbl, err := NewTable([]*Column{age, edu, owner, income, def}, 4)
	if err != nil {
		t.Fatalf("building fig1 table: %v", err)
	}
	return tbl
}

func TestTableBasics(t *testing.T) {
	tbl := fig1Table(t)
	if tbl.NumRows() != 10 || tbl.NumCols() != 5 {
		t.Fatalf("shape = %dx%d, want 10x5", tbl.NumRows(), tbl.NumCols())
	}
	if tbl.Task() != Classification {
		t.Fatalf("task = %v, want classification", tbl.Task())
	}
	if tbl.NumClasses() != 2 {
		t.Fatalf("classes = %d, want 2", tbl.NumClasses())
	}
	if got := tbl.FeatureIndexes(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("features = %v", got)
	}
	if tbl.ColumnByName("Income") == nil || tbl.ColumnByName("nope") != nil {
		t.Fatal("ColumnByName lookup wrong")
	}
}

func TestTableValidation(t *testing.T) {
	short := NewNumeric("short", []float64{1})
	long := NewNumeric("long", []float64{1, 2})
	if _, err := NewTable([]*Column{short, long}, 0); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if _, err := NewTable([]*Column{long}, 5); err == nil {
		t.Fatal("bad target not rejected")
	}
	if _, err := NewTable(nil, 0); err == nil {
		t.Fatal("empty table not rejected")
	}
	missY := NewNumeric("y", []float64{1, 2})
	missY.SetMissing(0)
	x := NewNumeric("x", []float64{1, 2})
	if _, err := NewTable([]*Column{x, missY}, 1); err == nil {
		t.Fatal("missing target values not rejected")
	}
}

func TestGatherTable(t *testing.T) {
	tbl := fig1Table(t)
	sub := tbl.Gather([]int32{1, 3, 5})
	if sub.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", sub.NumRows())
	}
	if sub.Cols[0].Float(0) != 28 || sub.Cols[0].Float(2) != 48 {
		t.Fatal("gathered ages wrong")
	}
	if sub.Y().Cat(1) != 1 {
		t.Fatal("gathered label wrong")
	}
}

func TestSplitPartition(t *testing.T) {
	tbl := fig1Table(t)
	left, right := tbl.Split(func(r int) bool { return tbl.Cols[0].Float(r) <= 40 })
	if left.NumRows()+right.NumRows() != 10 {
		t.Fatal("split lost rows")
	}
	if left.NumRows() != 5 { // ages <= 40: 24,28,32,36,37
		t.Fatalf("left rows = %d, want 5", left.NumRows())
	}
}

func TestRowSlices(t *testing.T) {
	cases := []struct {
		n, p int
		want [][2]int
	}{
		{10, 3, [][2]int{{0, 4}, {4, 7}, {7, 10}}},
		{4, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
		{3, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 3}, {3, 3}}},
		{5, 0, [][2]int{{0, 5}}},
	}
	for _, c := range cases {
		got := RowSlices(c.n, c.p)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("RowSlices(%d,%d) = %v, want %v", c.n, c.p, got, c.want)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := fig1Table(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadCSV(&buf, CSVOptions{Target: "Default"})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if back.NumRows() != tbl.NumRows() || back.NumCols() != tbl.NumCols() {
		t.Fatal("round-trip shape mismatch")
	}
	if back.Y().Kind != Categorical || back.Cols[0].Kind != Numeric {
		t.Fatal("round-trip kinds wrong")
	}
	for r := 0; r < 10; r++ {
		if back.Cols[0].Float(r) != tbl.Cols[0].Float(r) {
			t.Fatalf("row %d age mismatch", r)
		}
		wantLevel := tbl.Y().Levels[tbl.Y().Cat(r)]
		gotLevel := back.Y().Levels[back.Y().Cat(r)]
		if wantLevel != gotLevel {
			t.Fatalf("row %d label %q != %q", r, gotLevel, wantLevel)
		}
	}
}

func TestCSVMissingAndForceCategorical(t *testing.T) {
	csv := "a,b,y\n1,10,0\n,20,1\nNA,30,0\n4,?,1\n"
	tbl, err := ReadCSV(strings.NewReader(csv), CSVOptions{Target: "y", ForceCategorical: []string{"y"}})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	a := tbl.ColumnByName("a")
	if a.MissingCount() != 2 || !a.IsMissing(1) || !a.IsMissing(2) {
		t.Fatalf("column a missing = %d", a.MissingCount())
	}
	b := tbl.ColumnByName("b")
	if !b.IsMissing(3) {
		t.Fatal("? not treated as missing")
	}
	if tbl.Y().Kind != Categorical {
		t.Fatal("forced categorical target ignored")
	}
	if tbl.Task() != Classification {
		t.Fatal("task should be classification")
	}
}

func TestCSVTargetMissingError(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), CSVOptions{Target: "zzz"}); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestFillMissingWithMean(t *testing.T) {
	x := NewNumeric("x", []float64{1, 0, 3})
	x.SetMissing(1)
	c := NewCategorical("c", []int32{0, 0, 0}, []string{"a", "b"})
	c.Cats[2] = 1
	c.SetMissing(0)
	y := NewNumeric("y", []float64{1, 2, 3})
	tbl := MustNewTable([]*Column{x, c, y}, 2)
	filled := FillMissingWithMean(tbl)
	if filled.Cols[0].MissingCount() != 0 {
		t.Fatal("missing not filled")
	}
	if got := filled.Cols[0].Float(1); got != 2 { // mean of 1 and 3
		t.Fatalf("filled value = %g, want 2", got)
	}
	if got := filled.Cols[1].Cat(0); got != 0 { // mode of {0,1} from rows 1,2 -> tie to 0
		t.Fatalf("filled mode = %d, want 0", got)
	}
	// Original untouched.
	if tbl.Cols[0].MissingCount() != 1 {
		t.Fatal("original table mutated")
	}
}

func TestSplitRandom(t *testing.T) {
	tbl := fig1Table(t)
	train, test := SplitRandom(tbl, 0.3, 1)
	if train.NumRows()+test.NumRows() != 10 || test.NumRows() != 3 {
		t.Fatalf("split %d/%d", train.NumRows(), test.NumRows())
	}
	// Deterministic per seed.
	tr2, _ := SplitRandom(tbl, 0.3, 1)
	for r := 0; r < train.NumRows(); r++ {
		if train.Cols[0].Float(r) != tr2.Cols[0].Float(r) {
			t.Fatal("split not deterministic")
		}
	}
	if tr, te := SplitRandom(tbl, 0, 1); tr != tbl || te != nil {
		t.Fatal("frac 0 should be identity")
	}
}

func TestSplitStratified(t *testing.T) {
	n := 1000
	ys := make([]int32, n)
	xs := make([]float64, n)
	for i := range ys {
		if i%10 == 0 { // 10% minority class
			ys[i] = 1
		}
		xs[i] = float64(i)
	}
	tbl := MustNewTable([]*Column{
		NewNumeric("x", xs),
		NewCategorical("y", ys, []string{"a", "b"}),
	}, 1)
	train, test := SplitStratified(tbl, 0.2, 2)
	countClass := func(t2 *Table) (int, int) {
		zero, one := 0, 0
		for r := 0; r < t2.NumRows(); r++ {
			if t2.Y().Cat(r) == 1 {
				one++
			} else {
				zero++
			}
		}
		return zero, one
	}
	_, trainOnes := countClass(train)
	_, testOnes := countClass(test)
	if testOnes != 20 { // exactly 20% of the 100 minority rows
		t.Fatalf("test minority = %d, want 20", testOnes)
	}
	if trainOnes != 80 {
		t.Fatalf("train minority = %d, want 80", trainOnes)
	}
}
