package dataset

import "slices"

// SortIndex returns the column's presorted row permutation: every row index
// of the column ordered by ascending value, ties broken by row index, and
// missing rows last (also ordered by row index). Split finders walk this
// permutation filtered by node membership to evaluate numeric splits in O(n)
// without re-sorting per node.
//
// The permutation is computed once per column and cached. Columns are
// treated as immutable after construction (the repo never mutates values in
// place), so the cache is never invalidated; gathered shards are fresh
// Column objects and build their own index on first use — which is how a
// subtree-task pays the sort once per task rather than once per node.
//
// Concurrent callers are safe: a race between two builders publishes one of
// two identical permutations. Returns nil for categorical columns.
func (c *Column) SortIndex() []int32 {
	if c.Kind != Numeric {
		return nil
	}
	if p := c.sortIdx.Load(); p != nil {
		return *p
	}
	idx := make([]int32, len(c.Floats))
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(a, b int32) int {
		am, bm := c.IsMissing(int(a)), c.IsMissing(int(b))
		if am != bm {
			if bm {
				return -1
			}
			return 1
		}
		if !am {
			va, vb := c.Floats[a], c.Floats[b]
			if va < vb {
				return -1
			}
			if va > vb {
				return 1
			}
			// Equal values (or unmarked NaNs, which compare false both
			// ways) fall through to the row-id tiebreak, matching the
			// (value, row) order of the sort+sweep fallback exactly.
		}
		return int(a) - int(b)
	})
	c.sortIdx.Store(&idx)
	return idx
}

// HasSortIndex reports whether the presorted permutation has already been
// built, without building it. Used by tests and memory accounting.
func (c *Column) HasSortIndex() bool { return c.sortIdx.Load() != nil }

// SortIndexBytes returns the memory footprint of the cached permutation:
// 4 bytes per row once built, 0 before.
func (c *Column) SortIndexBytes() int {
	if p := c.sortIdx.Load(); p != nil {
		return 4 * len(*p)
	}
	return 0
}
