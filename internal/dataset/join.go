package dataset

import (
	"fmt"
)

// This file provides the preprocessing operations of the paper's Appendix G
// (the loan dataset): joining two tables on a key column, dropping columns
// that are mostly missing, and (in csv.go) mean-filling the rest.

// Join inner-joins two tables on equality of the named key columns: for
// every (left row, right row) pair with equal keys, the output row holds
// the left row's columns followed by the right row's columns (the right
// key column is dropped). The target of the output is taken from whichever
// input holds targetName.
//
// Key columns may be categorical (joined by level name) or numeric (joined
// by exact value). Rows with a missing key never match.
func Join(left, right *Table, leftKey, rightKey, targetName string) (*Table, error) {
	lk := left.ColumnByName(leftKey)
	rk := right.ColumnByName(rightKey)
	if lk == nil {
		return nil, fmt.Errorf("dataset: join: left key %q not found", leftKey)
	}
	if rk == nil {
		return nil, fmt.Errorf("dataset: join: right key %q not found", rightKey)
	}

	// Hash the right side by key value.
	index := map[string][]int32{}
	for r := 0; r < right.NumRows(); r++ {
		k, ok := keyOf(rk, r)
		if !ok {
			continue
		}
		index[k] = append(index[k], int32(r))
	}
	var leftRows, rightRows []int32
	for r := 0; r < left.NumRows(); r++ {
		k, ok := keyOf(lk, r)
		if !ok {
			continue
		}
		for _, rr := range index[k] {
			leftRows = append(leftRows, int32(r))
			rightRows = append(rightRows, rr)
		}
	}

	leftPart := left.Gather(leftRows)
	rightPart := right.Gather(rightRows)
	cols := make([]*Column, 0, len(leftPart.Cols)+len(rightPart.Cols)-1)
	cols = append(cols, leftPart.Cols...)
	for i, c := range rightPart.Cols {
		if right.Cols[i].Name == rightKey {
			continue // drop the duplicated key
		}
		cols = append(cols, c)
	}
	target := -1
	for i, c := range cols {
		if c.Name == targetName {
			target = i
		}
	}
	if target < 0 {
		return nil, fmt.Errorf("dataset: join: target %q not found in joined columns", targetName)
	}
	return NewTable(cols, target)
}

// keyOf renders a join key for row r, reporting false when missing.
func keyOf(c *Column, r int) (string, bool) {
	if c.IsMissing(r) {
		return "", false
	}
	if c.Kind == Categorical {
		return c.Levels[c.Cats[r]], true
	}
	return fmt.Sprintf("%g", c.Floats[r]), true
}

// DropSparseColumns removes every non-target column whose missing fraction
// exceeds maxMissingFrac — the paper removed loan columns with more than
// 75% missing values. The returned table shares column data with the input.
func DropSparseColumns(t *Table, maxMissingFrac float64) *Table {
	n := t.NumRows()
	cols := make([]*Column, 0, len(t.Cols))
	target := -1
	for i, c := range t.Cols {
		if i != t.Target && n > 0 {
			frac := float64(c.MissingCount()) / float64(n)
			if frac > maxMissingFrac {
				continue
			}
		}
		if i == t.Target {
			target = len(cols)
		}
		cols = append(cols, c)
	}
	return &Table{Cols: cols, Target: target}
}

// PrepareLoanStyle runs the paper's Appendix-G pipeline: join origination
// and performance tables on the loan key, drop >75%-missing columns, and
// mean-fill the remainder.
func PrepareLoanStyle(origination, performance *Table, key, target string) (*Table, error) {
	joined, err := Join(origination, performance, key, key, target)
	if err != nil {
		return nil, err
	}
	pruned := DropSparseColumns(joined, 0.75)
	filled := FillMissingWithMean(pruned)
	// The join key itself does not predict anything; drop it like the
	// paper's ID/date removal.
	cols := make([]*Column, 0, len(filled.Cols))
	targetIdx := -1
	for i, c := range filled.Cols {
		if c.Name == key && i != filled.Target {
			continue
		}
		if i == filled.Target {
			targetIdx = len(cols)
		}
		cols = append(cols, c)
	}
	return NewTable(cols, targetIdx)
}
