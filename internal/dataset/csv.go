package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// CSVOptions controls CSV ingestion.
type CSVOptions struct {
	// Target is the name of the Y column. Required.
	Target string
	// MissingTokens are cell values treated as missing, in addition to the
	// empty string. Defaults to {"NA", "?", "null"} when nil.
	MissingTokens []string
	// ForceCategorical lists column names always parsed as categorical even
	// if every value looks numeric (e.g. Poker's coded suits).
	ForceCategorical []string
	// Comma is the field separator; ',' when zero.
	Comma rune
}

func (o *CSVOptions) missing(tok string) bool {
	if tok == "" {
		return true
	}
	if o.MissingTokens == nil {
		switch tok {
		case "NA", "?", "null":
			return true
		}
		return false
	}
	for _, m := range o.MissingTokens {
		if tok == m {
			return true
		}
	}
	return false
}

func (o *CSVOptions) forced(name string) bool {
	for _, f := range o.ForceCategorical {
		if f == name {
			return true
		}
	}
	return false
}

// ReadCSV parses a headered CSV stream into a Table. Column types are
// inferred: a column is numeric when every non-missing cell parses as a
// float, categorical otherwise. Categorical levels are assigned in sorted
// order so that ingestion is deterministic.
func ReadCSV(r io.Reader, opts CSVOptions) (*Table, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = false
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	target := -1
	for i, name := range header {
		if strings.TrimSpace(name) == opts.Target {
			target = i
		}
	}
	if target < 0 {
		return nil, fmt.Errorf("dataset: target column %q not in header %v", opts.Target, header)
	}

	cells := make([][]string, len(header))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row: %w", err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: row has %d fields, want %d", len(rec), len(header))
		}
		for i, cell := range rec {
			cells[i] = append(cells[i], strings.TrimSpace(cell))
		}
	}

	cols := make([]*Column, len(header))
	for i, name := range header {
		name = strings.TrimSpace(name)
		cols[i] = buildColumn(name, cells[i], &opts)
	}
	return NewTable(cols, target)
}

func buildColumn(name string, cells []string, opts *CSVOptions) *Column {
	numeric := !opts.forced(name)
	if numeric {
		for _, cell := range cells {
			if opts.missing(cell) {
				continue
			}
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				numeric = false
				break
			}
		}
	}
	if numeric {
		vals := make([]float64, len(cells))
		col := NewNumeric(name, vals)
		for i, cell := range cells {
			if opts.missing(cell) {
				col.SetMissing(i)
				continue
			}
			vals[i], _ = strconv.ParseFloat(cell, 64)
		}
		return col
	}
	// Categorical: collect distinct levels deterministically.
	set := map[string]bool{}
	for _, cell := range cells {
		if !opts.missing(cell) {
			set[cell] = true
		}
	}
	levels := make([]string, 0, len(set))
	for l := range set {
		levels = append(levels, l)
	}
	sort.Strings(levels)
	code := make(map[string]int32, len(levels))
	for i, l := range levels {
		code[l] = int32(i)
	}
	codes := make([]int32, len(cells))
	col := NewCategorical(name, codes, levels)
	for i, cell := range cells {
		if opts.missing(cell) {
			col.SetMissing(i)
			continue
		}
		codes[i] = code[cell]
	}
	return col
}

// WriteCSV writes the table as a headered CSV. Missing cells are written as
// the empty string; categorical cells as their level names.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(t.Cols))
	for row := 0; row < t.NumRows(); row++ {
		for i, c := range t.Cols {
			switch {
			case c.IsMissing(row):
				rec[i] = ""
			case c.Kind == Numeric:
				rec[i] = strconv.FormatFloat(c.Floats[row], 'g', -1, 64)
			default:
				rec[i] = c.Levels[c.Cats[row]]
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FillMissingWithMean replaces missing numeric cells with the column mean and
// missing categorical cells with the column's modal level. This mirrors the
// preprocessing the paper had to apply for MLlib, which does not support
// missing values; the PLANET baseline uses it.
func FillMissingWithMean(t *Table) *Table {
	cols := make([]*Column, len(t.Cols))
	for i, c := range t.Cols {
		if c.MissingCount() == 0 {
			cols[i] = c
			continue
		}
		cc := c.Clone()
		switch c.Kind {
		case Numeric:
			sum, n := 0.0, 0
			for j, v := range c.Floats {
				if !c.IsMissing(j) {
					sum += v
					n++
				}
			}
			mean := 0.0
			if n > 0 {
				mean = sum / float64(n)
			}
			for j := range cc.Floats {
				if c.IsMissing(j) {
					cc.Floats[j] = mean
				}
			}
		case Categorical:
			counts := make([]int, len(c.Levels))
			for j, code := range c.Cats {
				if !c.IsMissing(j) {
					counts[code]++
				}
			}
			mode := int32(0)
			for l, n := range counts {
				if n > counts[mode] {
					mode = int32(l)
				}
			}
			for j := range cc.Cats {
				if c.IsMissing(j) {
					cc.Cats[j] = mode
				}
			}
		}
		cc.Miss = nil
		cols[i] = cc
	}
	return &Table{Cols: cols, Target: t.Target}
}
