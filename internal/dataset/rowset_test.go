package dataset

import "testing"

func TestRowSetAddRemove(t *testing.T) {
	s := NewRowSet(10)
	if s.Cap() != 10 || s.Len() != 0 {
		t.Fatalf("fresh set cap=%d len=%d", s.Cap(), s.Len())
	}
	s.Add(3)
	s.Add(3) // duplicates accumulate (bootstrap bags)
	s.Add(7)
	if s.Len() != 3 || s.Count(3) != 2 || !s.Contains(7) || s.Contains(0) {
		t.Fatalf("after adds: len=%d count3=%d", s.Len(), s.Count(3))
	}
	s.Remove(3)
	if s.Count(3) != 1 || s.Len() != 2 {
		t.Fatalf("after remove: count3=%d len=%d", s.Count(3), s.Len())
	}
}

func TestRowSetAddAllRemoveAllRoundTrip(t *testing.T) {
	rows := []int32{1, 5, 5, 5, 9, 0}
	s := RowSetOf(rows, 12)
	if s.Len() != 6 || s.Count(5) != 3 {
		t.Fatalf("RowSetOf: len=%d count5=%d", s.Len(), s.Count(5))
	}
	s.RemoveAll(rows)
	if s.Len() != 0 {
		t.Fatalf("len %d after RemoveAll round trip", s.Len())
	}
	for r := int32(0); r < 12; r++ {
		if s.Count(r) != 0 {
			t.Fatalf("row %d count %d after round trip", r, s.Count(r))
		}
	}
}

func TestRowSetReset(t *testing.T) {
	s := RowSetOf([]int32{2, 2, 4}, 6)
	s.Reset()
	if s.Len() != 0 || s.Contains(2) || s.Contains(4) {
		t.Fatal("reset left residue")
	}
}
