package dataset

import (
	"math/rand"
)

// SplitRandom holds out a random testFrac of the table's rows, returning
// (train, test). testFrac outside (0, 1) returns (t, nil). Deterministic in
// the seed.
func SplitRandom(t *Table, testFrac float64, seed int64) (train, test *Table) {
	if testFrac <= 0 || testFrac >= 1 {
		return t, nil
	}
	n := t.NumRows()
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	cut := int(float64(n) * testFrac)
	testRows := make([]int32, 0, cut)
	trainRows := make([]int32, 0, n-cut)
	holdout := make([]bool, n)
	for _, r := range perm[:cut] {
		holdout[r] = true
	}
	for r := 0; r < n; r++ {
		if holdout[r] {
			testRows = append(testRows, int32(r))
		} else {
			trainRows = append(trainRows, int32(r))
		}
	}
	return t.Gather(trainRows), t.Gather(testRows)
}

// SplitStratified holds out testFrac of the rows preserving the class
// proportions of a categorical target (per-class random sampling). Falls
// back to SplitRandom for regression tables.
func SplitStratified(t *Table, testFrac float64, seed int64) (train, test *Table) {
	if t.Task() != Classification || testFrac <= 0 || testFrac >= 1 {
		return SplitRandom(t, testFrac, seed)
	}
	rng := rand.New(rand.NewSource(seed))
	byClass := make([][]int32, t.NumClasses())
	y := t.Y()
	for r := 0; r < t.NumRows(); r++ {
		c := y.Cats[r]
		byClass[c] = append(byClass[c], int32(r))
	}
	holdout := make([]bool, t.NumRows())
	for _, rows := range byClass {
		perm := rng.Perm(len(rows))
		cut := int(float64(len(rows)) * testFrac)
		for _, i := range perm[:cut] {
			holdout[rows[i]] = true
		}
	}
	var trainRows, testRows []int32
	for r := 0; r < t.NumRows(); r++ {
		if holdout[r] {
			testRows = append(testRows, int32(r))
		} else {
			trainRows = append(trainRows, int32(r))
		}
	}
	return t.Gather(trainRows), t.Gather(testRows)
}
