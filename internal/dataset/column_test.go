package dataset

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNumericColumnBasics(t *testing.T) {
	c := NewNumeric("age", []float64{24, 28, 44, 32})
	if c.Kind != Numeric {
		t.Fatalf("kind = %v, want numeric", c.Kind)
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d, want 4", c.Len())
	}
	if got := c.Float(2); got != 44 {
		t.Fatalf("Float(2) = %g, want 44", got)
	}
	if c.MissingCount() != 0 {
		t.Fatalf("missing = %d, want 0", c.MissingCount())
	}
}

func TestNaNBecomesMissing(t *testing.T) {
	c := NewNumeric("x", []float64{1, math.NaN(), 3})
	if !c.IsMissing(1) {
		t.Fatal("NaN row not marked missing")
	}
	if c.IsMissing(0) || c.IsMissing(2) {
		t.Fatal("non-NaN rows marked missing")
	}
	if c.MissingCount() != 1 {
		t.Fatalf("missing = %d, want 1", c.MissingCount())
	}
}

func TestCategoricalColumnBasics(t *testing.T) {
	levels := []string{"Primary", "Secondary", "Bachelor", "Master", "PhD"}
	c := NewCategorical("edu", []int32{2, 3, 2, 1, 4}, levels)
	if c.Kind != Categorical {
		t.Fatalf("kind = %v", c.Kind)
	}
	if c.NumLevels() != 5 {
		t.Fatalf("levels = %d, want 5", c.NumLevels())
	}
	if got := c.Cat(3); got != 1 {
		t.Fatalf("Cat(3) = %d, want 1", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestValidateRejectsBadCode(t *testing.T) {
	c := NewCategorical("bad", []int32{0, 7}, []string{"a", "b"})
	if err := c.Validate(); err == nil {
		t.Fatal("expected out-of-range code error")
	}
}

func TestValidateAllowsMissingCodeOutOfRange(t *testing.T) {
	c := NewCategorical("ok", []int32{0, 99}, []string{"a", "b"})
	c.SetMissing(1)
	if err := c.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestMissingBitmapGrowsPastWord(t *testing.T) {
	c := NewNumeric("x", make([]float64, 200))
	for _, i := range []int{0, 63, 64, 130, 199} {
		c.SetMissing(i)
	}
	for _, i := range []int{0, 63, 64, 130, 199} {
		if !c.IsMissing(i) {
			t.Fatalf("row %d not missing", i)
		}
	}
	if c.IsMissing(1) || c.IsMissing(65) || c.IsMissing(198) {
		t.Fatal("spurious missing bit")
	}
	if c.MissingCount() != 5 {
		t.Fatalf("missing = %d, want 5", c.MissingCount())
	}
}

func TestGatherNumericCarriesMissing(t *testing.T) {
	c := NewNumeric("x", []float64{10, 11, 12, 13, 14})
	c.SetMissing(2)
	g := c.Gather([]int32{4, 2, 0})
	want := []float64{14, 12, 10}
	if !reflect.DeepEqual(g.Floats, want) {
		t.Fatalf("gathered %v, want %v", g.Floats, want)
	}
	if !g.IsMissing(1) || g.IsMissing(0) || g.IsMissing(2) {
		t.Fatal("missing flags not carried to gathered positions")
	}
}

func TestGatherCategorical(t *testing.T) {
	c := NewCategorical("c", []int32{0, 1, 2, 1}, []string{"a", "b", "c"})
	g := c.Gather([]int32{3, 3, 0})
	if !reflect.DeepEqual(g.Cats, []int32{1, 1, 0}) {
		t.Fatalf("gathered %v", g.Cats)
	}
	if g.NumLevels() != 3 {
		t.Fatal("levels not carried")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := NewNumeric("x", []float64{1, 2, 3})
	c.SetMissing(1)
	d := c.Clone()
	d.Floats[0] = 99
	d.SetMissing(2)
	if c.Floats[0] != 1 {
		t.Fatal("clone shares float backing array")
	}
	if c.IsMissing(2) {
		t.Fatal("clone shares missing bitmap")
	}
}

func TestGatherRoundTripProperty(t *testing.T) {
	// Gathering all rows in order must reproduce the column exactly.
	f := func(vals []float64, missSeed int64) bool {
		for i, v := range vals {
			if math.IsNaN(v) {
				vals[i] = 0
			}
		}
		c := NewNumeric("x", vals)
		rng := rand.New(rand.NewSource(missSeed))
		for i := range vals {
			if rng.Intn(4) == 0 {
				c.SetMissing(i)
			}
		}
		rows := AllRows(len(vals))
		g := c.Gather(rows)
		if !reflect.DeepEqual(g.Floats, c.Floats) && !(len(vals) == 0 && g.Len() == 0) {
			return false
		}
		for i := range vals {
			if g.IsMissing(i) != c.IsMissing(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestByteSizePositive(t *testing.T) {
	c := NewCategorical("c", []int32{0, 1}, []string{"a", "b"})
	if c.ByteSize() <= 0 {
		t.Fatal("byte size must be positive")
	}
}
