package forest

import (
	"fmt"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
)

// This file implements the model layer of the paper's Fig. 2: users submit
// *model* training jobs (decision trees, random forests, extra-trees
// forests) which are disassembled into individual decision trees, trained
// together through one Trainer — on a TreeServer master the trees of every
// model in a wave interleave in the shared n_pool-bounded engine — and
// reassembled into the target models. Models may declare prerequisites (the
// paper's dependency tracking for boosted/cascaded workloads): a model's
// trees only become eligible once every prerequisite completes.

// ModelKind enumerates the model types the server assembles.
type ModelKind uint8

const (
	// DecisionTree is a single exact decision tree.
	DecisionTree ModelKind = iota
	// RandomForest is bagging with per-tree column sampling.
	RandomForest
	// ExtraForest is a completely-random (extra-trees) forest.
	ExtraForest
)

// String implements fmt.Stringer.
func (k ModelKind) String() string {
	switch k {
	case DecisionTree:
		return "decision-tree"
	case RandomForest:
		return "random-forest"
	case ExtraForest:
		return "extra-forest"
	default:
		return fmt.Sprintf("ModelKind(%d)", uint8(k))
	}
}

// ModelSpec describes one model job.
type ModelSpec struct {
	Name   string
	Kind   ModelKind
	Params core.Params
	// Trees is the ensemble size (ignored for DecisionTree).
	Trees int
	// ColFrac is |C|/|A| per tree for RandomForest (0 = sqrt|A|).
	ColFrac float64
	// Bootstrap draws per-tree bags with replacement (forests).
	Bootstrap bool
	Seed      int64
	// After lists indexes (into the submitted batch) of models that must
	// complete before this model's trees are admitted.
	After []int
}

// TrainedModel is a reassembled model.
type TrainedModel struct {
	Spec   ModelSpec
	Forest *Forest // holds one tree for DecisionTree models
}

// Tree returns the single tree of a DecisionTree model (nil otherwise).
func (m *TrainedModel) Tree() *core.Tree {
	if m.Spec.Kind == DecisionTree && len(m.Forest.Trees) == 1 {
		return m.Forest.Trees[0]
	}
	return nil
}

// PredictClass runs the model on one row.
func (m *TrainedModel) PredictClass(tbl *dataset.Table, row int) int32 {
	return m.Forest.PredictClass(tbl, row, 0)
}

// PredictValue runs a regression model on one row.
func (m *TrainedModel) PredictValue(tbl *dataset.Table, row int) float64 {
	return m.Forest.PredictValue(tbl, row, 0)
}

// Accuracy evaluates classification accuracy over a table.
func (m *TrainedModel) Accuracy(tbl *dataset.Table) float64 { return m.Forest.Accuracy(tbl) }

// specsFor expands a model into its tree specs.
func specsFor(schema cluster.Schema, m ModelSpec) ([]cluster.TreeSpec, error) {
	switch m.Kind {
	case DecisionTree:
		params := m.Params
		params.Seed = m.Seed
		return []cluster.TreeSpec{{Params: params}}, nil
	case RandomForest:
		if m.Trees <= 0 {
			return nil, fmt.Errorf("forest: model %q: random forest needs Trees > 0", m.Name)
		}
		return Specs(schema, Config{
			Trees: m.Trees, Params: m.Params, ColFrac: m.ColFrac,
			Bootstrap: m.Bootstrap, Seed: m.Seed,
		}), nil
	case ExtraForest:
		if m.Trees <= 0 {
			return nil, fmt.Errorf("forest: model %q: extra forest needs Trees > 0", m.Name)
		}
		return Specs(schema, Config{
			Trees: m.Trees, Params: m.Params, ExtraTrees: true,
			Bootstrap: m.Bootstrap, Seed: m.Seed,
		}), nil
	default:
		return nil, fmt.Errorf("forest: model %q: unknown kind %v", m.Name, m.Kind)
	}
}

// TrainModels trains a batch of model jobs through the trainer. Models
// without dependencies train concurrently in one wave (a DT and an RF
// interleave their tree tasks exactly as in Fig. 2); dependent models run
// in later waves once their prerequisites finish. Results are returned in
// submission order.
func TrainModels(tr Trainer, schema cluster.Schema, models []ModelSpec) ([]*TrainedModel, error) {
	if err := validateDependencies(models); err != nil {
		return nil, err
	}
	out := make([]*TrainedModel, len(models))
	done := make([]bool, len(models))
	for remaining := len(models); remaining > 0; {
		// Collect the wave of models whose prerequisites are all done.
		var wave []int
		for i, spec := range models {
			if done[i] {
				continue
			}
			ready := true
			for _, dep := range spec.After {
				if !done[dep] {
					ready = false
				}
			}
			if ready {
				wave = append(wave, i)
			}
		}
		// validateDependencies rejects cycles, so a wave is always found.
		var allSpecs []cluster.TreeSpec
		offsets := make([]int, len(wave)+1)
		for wi, mi := range wave {
			specs, err := specsFor(schema, models[mi])
			if err != nil {
				return nil, err
			}
			allSpecs = append(allSpecs, specs...)
			offsets[wi+1] = offsets[wi] + len(specs)
		}
		trees, err := tr.Train(allSpecs)
		if err != nil {
			return nil, err
		}
		for wi, mi := range wave {
			slice := trees[offsets[wi]:offsets[wi+1]]
			out[mi] = &TrainedModel{
				Spec: models[mi],
				Forest: &Forest{
					Trees:      append([]*core.Tree(nil), slice...),
					Task:       schema.Task,
					NumClasses: schema.NumClasses,
				},
			}
			done[mi] = true
			remaining--
		}
	}
	return out, nil
}

func validateDependencies(models []ModelSpec) error {
	for i, spec := range models {
		for _, dep := range spec.After {
			if dep < 0 || dep >= len(models) {
				return fmt.Errorf("forest: model %d depends on out-of-range model %d", i, dep)
			}
			if dep == i {
				return fmt.Errorf("forest: model %d depends on itself", i)
			}
		}
	}
	const (
		white = iota
		grey
		black
	)
	colour := make([]int, len(models))
	var visit func(int) error
	visit = func(i int) error {
		colour[i] = grey
		for _, dep := range models[i].After {
			switch colour[dep] {
			case grey:
				return fmt.Errorf("forest: dependency cycle through model %d", i)
			case white:
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		colour[i] = black
		return nil
	}
	for i := range models {
		if colour[i] == white {
			if err := visit(i); err != nil {
				return err
			}
		}
	}
	return nil
}
