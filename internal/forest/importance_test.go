package forest

import (
	"math"
	"math/rand"
	"testing"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
)

// TestImportanceFindsSignalColumn plants the label in exactly one of eight
// columns; that column must dominate the importance vector.
func TestImportanceFindsSignalColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 4000
	cols := make([]*dataset.Column, 9)
	ys := make([]int32, n)
	for c := 0; c < 8; c++ {
		vals := make([]float64, n)
		for r := range vals {
			vals[r] = rng.NormFloat64()
		}
		cols[c] = dataset.NewNumeric("f", vals)
	}
	// Column 3 carries the signal.
	for r := 0; r < n; r++ {
		if cols[3].Floats[r] > 0 {
			ys[r] = 1
		}
		if rng.Float64() < 0.05 {
			ys[r] = 1 - ys[r]
		}
	}
	cols[8] = dataset.NewCategorical("y", ys, []string{"a", "b"})
	tbl := dataset.MustNewTable(cols, 8)

	cfg := Config{Trees: 15, Params: core.Defaults(), ColFrac: -1, Bootstrap: true, Seed: 2}
	f, err := Train(&Local{Table: tbl}, cluster.SchemaOf(tbl), cfg)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := Importance(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %g", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %g", sum)
	}
	ranked := RankImportance(imp)
	if ranked[0].Col != 3 {
		t.Fatalf("top feature = %d (%.3f), want 3; full ranking %+v", ranked[0].Col, ranked[0].Score, ranked)
	}
	if ranked[0].Score < 0.5 {
		t.Fatalf("signal column importance only %.3f", ranked[0].Score)
	}
}

func TestImportanceErrors(t *testing.T) {
	reg := &Forest{Task: dataset.Regression}
	if _, err := Importance(reg, 3); err == nil {
		t.Fatal("regression accepted")
	}
	empty := &Forest{Task: dataset.Classification}
	if _, err := Importance(empty, 3); err == nil {
		t.Fatal("empty forest accepted")
	}
}
