package forest

import (
	"fmt"

	"treeserver/internal/cluster"
	"treeserver/internal/dataset"
	"treeserver/internal/metrics"
)

// OOBReport is the out-of-bag evaluation of a bootstrap forest: each row is
// scored only by the trees whose bags excluded it, giving an unbiased error
// estimate without a held-out set.
type OOBReport struct {
	// Covered is the number of rows that were out of bag for at least one
	// tree (rows in every bag cannot be scored).
	Covered int
	// Accuracy is the OOB accuracy over covered rows (classification).
	Accuracy float64
	// RMSE is the OOB error over covered rows (regression).
	RMSE float64
}

// OOB computes the out-of-bag estimate for a forest trained from the given
// specs on tbl. The specs must be the ones the forest was trained with
// (bags are re-derived from their seeds, the same way workers derive root
// rows — nothing was recorded during training).
func OOB(f *Forest, specs []cluster.TreeSpec, tbl *dataset.Table) (OOBReport, error) {
	if len(specs) != len(f.Trees) {
		return OOBReport{}, fmt.Errorf("forest: %d specs for %d trees", len(specs), len(f.Trees))
	}
	n := tbl.NumRows()
	classification := f.Task == dataset.Classification

	votes := make([][]float64, n) // class votes, or [sum, count] for regression
	for ti, spec := range specs {
		if spec.Bag.Sample <= 0 {
			return OOBReport{}, fmt.Errorf("forest: tree %d has no bootstrap bag; OOB needs Bootstrap forests", ti)
		}
		bag := spec.Bag
		if bag.NumRows == 0 {
			bag.NumRows = n
		}
		inBag := make([]bool, n)
		for _, r := range bag.Rows() {
			inBag[r] = true
		}
		tree := f.Trees[ti]
		for r := 0; r < n; r++ {
			if inBag[r] {
				continue
			}
			if votes[r] == nil {
				if classification {
					votes[r] = make([]float64, f.NumClasses)
				} else {
					votes[r] = make([]float64, 2)
				}
			}
			if classification {
				for k, p := range tree.PredictPMF(tbl, r, 0) {
					votes[r][k] += p
				}
			} else {
				votes[r][0] += tree.PredictValue(tbl, r, 0)
				votes[r][1]++
			}
		}
	}

	rep := OOBReport{}
	y := tbl.Y()
	var pred []int32
	var actual []int32
	var predV, actualV []float64
	for r := 0; r < n; r++ {
		if votes[r] == nil {
			continue
		}
		rep.Covered++
		if classification {
			pred = append(pred, metrics.ArgMax(votes[r]))
			actual = append(actual, y.Cats[r])
		} else {
			predV = append(predV, votes[r][0]/votes[r][1])
			actualV = append(actualV, y.Floats[r])
		}
	}
	if classification {
		rep.Accuracy = metrics.Accuracy(pred, actual)
	} else {
		rep.RMSE = metrics.RMSE(predV, actualV)
	}
	return rep, nil
}
