package forest

import (
	"testing"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

func modelTestCluster(t *testing.T) (*cluster.Cluster, cluster.Schema, func()) {
	t.Helper()
	train := synth.GenerateTrain(synth.Spec{
		Name: "models", Rows: 4000, NumNumeric: 6, NumCategorical: 2,
		NumClasses: 2, ConceptDepth: 4, Seed: 81,
	})
	c, err := cluster.NewInProcess(train,
		cluster.WithWorkers(3), cluster.WithCompers(2),
		cluster.WithPolicy(task.Policy{TauD: 500, TauDFS: 2000, NPool: 32}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return c, cluster.SchemaOf(train), c.Close
}

// TestTrainModelsFig2 reproduces the Fig. 2 scenario: two decision trees
// and a random forest submitted together, disassembled into 5 trees trained
// in one pool, and reassembled per model.
func TestTrainModelsFig2(t *testing.T) {
	c, schema, done := modelTestCluster(t)
	defer done()
	models := []ModelSpec{
		{Name: "DT1", Kind: DecisionTree, Params: core.Params{MaxDepth: 6, MinLeaf: 1}},
		{Name: "DT2", Kind: DecisionTree, Params: core.Params{MaxDepth: 8, MinLeaf: 1}},
		{Name: "RF3", Kind: RandomForest, Params: core.Defaults(), Trees: 3, ColFrac: 0.4, Bootstrap: true, Seed: 5},
	}
	trained, err := TrainModels(c, schema, models)
	if err != nil {
		t.Fatal(err)
	}
	if len(trained) != 3 {
		t.Fatalf("models = %d", len(trained))
	}
	if trained[0].Tree() == nil || trained[1].Tree() == nil {
		t.Fatal("decision-tree models missing single tree")
	}
	if trained[0].Tree().MaxDepth > 6 || trained[1].Tree().MaxDepth > 8 {
		t.Fatal("dmax not respected per model")
	}
	if got := len(trained[2].Forest.Trees); got != 3 {
		t.Fatalf("RF3 has %d trees, want 3", got)
	}
	if trained[2].Tree() != nil {
		t.Fatal("forest model reported a single tree")
	}
	// 40% of 8 features = 3 columns per tree.
	for _, tr := range trained[2].Forest.Trees {
		tr.Walk(func(n *core.Node) {
			if n.Cond != nil && n.Cond.Col > 7 {
				t.Fatal("split outside feature range")
			}
		})
	}
}

func TestTrainModelsDependencies(t *testing.T) {
	c, schema, done := modelTestCluster(t)
	defer done()
	models := []ModelSpec{
		{Name: "base", Kind: DecisionTree, Params: core.Defaults()},
		{Name: "second", Kind: DecisionTree, Params: core.Defaults(), After: []int{0}},
		{Name: "third", Kind: DecisionTree, Params: core.Defaults(), After: []int{1}},
	}
	trained, err := TrainModels(c, schema, models)
	if err != nil {
		t.Fatal(err)
	}
	// Identical params on the same data: all three trees must be equal.
	if !trained[0].Tree().Equal(trained[1].Tree()) || !trained[1].Tree().Equal(trained[2].Tree()) {
		t.Fatal("dependent waves changed training results")
	}
}

func TestTrainModelsRejectsBadDependencies(t *testing.T) {
	c, schema, done := modelTestCluster(t)
	defer done()
	cases := [][]ModelSpec{
		{{Name: "self", Kind: DecisionTree, Params: core.Defaults(), After: []int{0}}},
		{{Name: "oob", Kind: DecisionTree, Params: core.Defaults(), After: []int{5}}},
		{
			{Name: "a", Kind: DecisionTree, Params: core.Defaults(), After: []int{1}},
			{Name: "b", Kind: DecisionTree, Params: core.Defaults(), After: []int{0}},
		},
	}
	for i, models := range cases {
		if _, err := TrainModels(c, schema, models); err == nil {
			t.Fatalf("case %d: invalid dependencies accepted", i)
		}
	}
}

func TestTrainModelsValidation(t *testing.T) {
	c, schema, done := modelTestCluster(t)
	defer done()
	if _, err := TrainModels(c, schema, []ModelSpec{{Name: "rf0", Kind: RandomForest, Params: core.Defaults()}}); err == nil {
		t.Fatal("forest with zero trees accepted")
	}
	if _, err := TrainModels(c, schema, []ModelSpec{{Name: "bad", Kind: ModelKind(99), Params: core.Defaults()}}); err == nil {
		t.Fatal("unknown model kind accepted")
	}
}

func TestTrainModelsExtraForest(t *testing.T) {
	c, schema, done := modelTestCluster(t)
	defer done()
	trained, err := TrainModels(c, schema, []ModelSpec{
		{Name: "XT", Kind: ExtraForest, Params: core.Defaults(), Trees: 4, Bootstrap: true, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trained[0].Forest.Trees) != 4 {
		t.Fatalf("trees = %d", len(trained[0].Forest.Trees))
	}
	for _, tr := range trained[0].Forest.Trees {
		if err := tr.Validate(); err != nil {
			t.Fatalf("invalid extra tree: %v", err)
		}
	}
}

func TestModelKindStrings(t *testing.T) {
	if DecisionTree.String() != "decision-tree" || RandomForest.String() != "random-forest" ||
		ExtraForest.String() != "extra-forest" {
		t.Fatal("kind strings wrong")
	}
}
