// Package forest implements tree ensembles on top of the TreeServer engine:
// random forests (bagging + per-tree column sampling, |C| = √|A| by default)
// and completely-random forests (extra-trees, Appendix F). A Forest is
// trained through any Trainer — the distributed cluster or the local
// fallback — because in TreeServer an ensemble is just a job of independent
// tree specs (Section III, "Tree Scheduling").
package forest

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/metrics"
)

// Trainer trains a batch of independent trees. *cluster.Cluster satisfies
// it; Local provides a single-machine implementation.
type Trainer interface {
	Train(specs []cluster.TreeSpec) ([]*core.Tree, error)
}

// Local trains tree specs on the local machine, with trees running in
// parallel across Parallelism goroutines (1 = fully serial, the paper's
// "single thread" comparison mode).
type Local struct {
	Table       *dataset.Table
	Parallelism int
}

// Train implements Trainer.
func (l *Local) Train(specs []cluster.TreeSpec) ([]*core.Tree, error) {
	par := l.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	trees := make([]*core.Tree, len(specs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			spec := specs[i]
			if spec.Bag.NumRows == 0 {
				spec.Bag.NumRows = l.Table.NumRows()
			}
			trees[i] = core.TrainLocal(l.Table, spec.Bag.Rows(), spec.Params)
		}(i)
	}
	wg.Wait()
	return trees, nil
}

// Config describes an ensemble.
type Config struct {
	// Trees is the ensemble size.
	Trees int
	// Params is the per-tree base configuration (depth, τ_leaf, measure).
	Params core.Params
	// ColFrac is |C|/|A| sampled per tree; 0 selects √|A| (the paper's
	// random-forest default), 1 uses every column, and negative disables
	// sampling entirely (plain bagging).
	ColFrac float64
	// Bootstrap draws each tree's bag with replacement at full size.
	Bootstrap bool
	// ExtraTrees switches to completely-random trees; column sampling is
	// disabled because extra-trees resample a column per node.
	ExtraTrees bool
	// Seed drives all ensemble randomness.
	Seed int64
}

// Forest is a trained ensemble that votes by averaging PMF vectors
// (classification) or predictions (regression).
type Forest struct {
	Trees      []*core.Tree
	Task       dataset.Task
	NumClasses int
}

// Specs expands the ensemble config into independent tree specs over the
// given schema, all derived deterministically from cfg.Seed.
func Specs(schema cluster.Schema, cfg Config) []cluster.TreeSpec {
	rng := rand.New(rand.NewSource(cfg.Seed))
	features := make([]int, 0, schema.NumCols-1)
	for c := 0; c < schema.NumCols; c++ {
		if c != schema.Target {
			features = append(features, c)
		}
	}
	sample := sampleSize(len(features), cfg)
	specs := make([]cluster.TreeSpec, cfg.Trees)
	for i := range specs {
		params := cfg.Params
		params.ExtraTrees = cfg.ExtraTrees
		params.Seed = rng.Int63()
		if sample < len(features) && !cfg.ExtraTrees {
			perm := rng.Perm(len(features))
			cols := make([]int, sample)
			for j := 0; j < sample; j++ {
				cols[j] = features[perm[j]]
			}
			insertionSort(cols)
			params.Candidates = cols
		}
		spec := cluster.TreeSpec{Params: params}
		if cfg.Bootstrap {
			spec.Bag = cluster.BagSpec{NumRows: schema.NumRows, Sample: schema.NumRows, Seed: rng.Int63()}
		} else {
			spec.Bag = cluster.BagSpec{NumRows: schema.NumRows}
		}
		specs[i] = spec
	}
	return specs
}

func sampleSize(numFeatures int, cfg Config) int {
	if cfg.ExtraTrees || cfg.ColFrac < 0 {
		return numFeatures
	}
	var s int
	if cfg.ColFrac == 0 {
		s = int(math.Round(math.Sqrt(float64(numFeatures))))
	} else {
		s = int(math.Round(cfg.ColFrac * float64(numFeatures)))
	}
	if s < 1 {
		s = 1
	}
	if s > numFeatures {
		s = numFeatures
	}
	return s
}

// Train builds the ensemble through the trainer.
func Train(tr Trainer, schema cluster.Schema, cfg Config) (*Forest, error) {
	if cfg.Trees <= 0 {
		return nil, fmt.Errorf("forest: Trees must be positive, got %d", cfg.Trees)
	}
	trees, err := tr.Train(Specs(schema, cfg))
	if err != nil {
		return nil, err
	}
	return &Forest{Trees: trees, Task: schema.Task, NumClasses: schema.NumClasses}, nil
}

// PredictPMF averages the member trees' PMF vectors for a row (maxDepth 0 =
// full depth). Classification only.
func (f *Forest) PredictPMF(tbl *dataset.Table, row, maxDepth int) []float64 {
	out := make([]float64, f.NumClasses)
	for _, t := range f.Trees {
		pmf := t.PredictPMF(tbl, row, maxDepth)
		for i, p := range pmf {
			out[i] += p
		}
	}
	for i := range out {
		out[i] /= float64(len(f.Trees))
	}
	return out
}

// PredictClass returns the ensemble's majority-probability class.
func (f *Forest) PredictClass(tbl *dataset.Table, row, maxDepth int) int32 {
	return metrics.ArgMax(f.PredictPMF(tbl, row, maxDepth))
}

// PredictValue averages the member trees' regression outputs.
func (f *Forest) PredictValue(tbl *dataset.Table, row, maxDepth int) float64 {
	var sum float64
	for _, t := range f.Trees {
		sum += t.PredictValue(tbl, row, maxDepth)
	}
	return sum / float64(len(f.Trees))
}

// Accuracy evaluates classification accuracy over a table.
func (f *Forest) Accuracy(tbl *dataset.Table) float64 {
	pred := make([]int32, tbl.NumRows())
	for r := range pred {
		pred[r] = f.PredictClass(tbl, r, 0)
	}
	return metrics.Accuracy(pred, tbl.Y().Cats)
}

// RMSE evaluates regression error over a table.
func (f *Forest) RMSE(tbl *dataset.Table) float64 {
	pred := make([]float64, tbl.NumRows())
	actual := make([]float64, tbl.NumRows())
	for r := range pred {
		pred[r] = f.PredictValue(tbl, r, 0)
		actual[r] = tbl.Y().Float(r)
	}
	return metrics.RMSE(pred, actual)
}

func insertionSort(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
