package forest

import (
	"math"
	"testing"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/synth"
)

func TestOOBClassification(t *testing.T) {
	train, test := synth.Generate(synth.Spec{
		Name: "oob", Rows: 4000, NumNumeric: 8, NumClasses: 2, ConceptDepth: 4,
		LabelNoise: 0.1, Seed: 101,
	}, 0.25)
	cfg := Config{Trees: 25, Params: core.Defaults(), ColFrac: -1, Bootstrap: true, Seed: 3}
	schema := cluster.SchemaOf(train)
	specs := Specs(schema, cfg)
	f, err := Train(&Local{Table: train}, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := OOB(f, specs, train)
	if err != nil {
		t.Fatal(err)
	}
	// With 25 bootstrap bags virtually every row is OOB somewhere.
	if rep.Covered < train.NumRows()*99/100 {
		t.Fatalf("covered %d of %d", rep.Covered, train.NumRows())
	}
	// OOB accuracy should approximate held-out accuracy, not training fit.
	heldOut := f.Accuracy(test)
	if math.Abs(rep.Accuracy-heldOut) > 0.05 {
		t.Fatalf("OOB %.3f vs held-out %.3f: estimate not unbiased", rep.Accuracy, heldOut)
	}
}

func TestOOBRegression(t *testing.T) {
	train, test := synth.Generate(synth.Spec{
		Name: "oobr", Rows: 4000, NumNumeric: 6, NumClasses: 0, ConceptDepth: 3,
		LabelNoise: 0.3, Seed: 102,
	}, 0.25)
	cfg := Config{Trees: 20, Params: core.Defaults(), ColFrac: -1, Bootstrap: true, Seed: 4}
	schema := cluster.SchemaOf(train)
	specs := Specs(schema, cfg)
	f, err := Train(&Local{Table: train}, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := OOB(f, specs, train)
	if err != nil {
		t.Fatal(err)
	}
	heldOut := f.RMSE(test)
	if rep.RMSE <= 0 {
		t.Fatal("no OOB RMSE")
	}
	if math.Abs(rep.RMSE-heldOut) > 0.5*heldOut {
		t.Fatalf("OOB rmse %.3f vs held-out %.3f", rep.RMSE, heldOut)
	}
}

func TestOOBErrors(t *testing.T) {
	train := synth.GenerateTrain(synth.Spec{
		Name: "oobe", Rows: 500, NumNumeric: 3, NumClasses: 2, Seed: 103,
	})
	schema := cluster.SchemaOf(train)
	cfg := Config{Trees: 3, Params: core.Defaults(), Bootstrap: true, Seed: 5}
	specs := Specs(schema, cfg)
	f, err := Train(&Local{Table: train}, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OOB(f, specs[:2], train); err == nil {
		t.Fatal("spec/tree count mismatch accepted")
	}
	noBag := Config{Trees: 3, Params: core.Defaults(), Seed: 5} // no bootstrap
	nbSpecs := Specs(schema, noBag)
	nbForest, err := Train(&Local{Table: train}, schema, noBag)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OOB(nbForest, nbSpecs, train); err == nil {
		t.Fatal("OOB without bootstrap accepted")
	}
}
