package forest

import (
	"fmt"
	"slices"

	"treeserver/internal/core"
	"treeserver/internal/dataset"
)

// Importance computes mean-decrease-in-impurity feature importances for a
// classification forest: each split contributes its weighted Gini decrease
// to its split column, summed per tree and averaged over the forest, then
// normalised to sum to 1. The computation is exact from the per-node class
// distributions every TreeServer node already carries (Appendix D), so no
// data pass is needed.
//
// Regression trees store only node means (not variances), so importance is
// classification-only; it returns an error otherwise.
func Importance(f *Forest, numFeatures int) ([]float64, error) {
	if f.Task != dataset.Classification {
		return nil, fmt.Errorf("forest: impurity importance needs a classification forest")
	}
	if len(f.Trees) == 0 {
		return nil, fmt.Errorf("forest: empty forest")
	}
	total := make([]float64, numFeatures)
	for _, tree := range f.Trees {
		tree.Walk(func(n *core.Node) {
			if n.Cond == nil || n.Left == nil || n.Right == nil {
				return
			}
			if n.Cond.Col < 0 || n.Cond.Col >= numFeatures {
				return
			}
			dec := float64(n.N)*giniOfPMF(n.PMF) -
				float64(n.Left.N)*giniOfPMF(n.Left.PMF) -
				float64(n.Right.N)*giniOfPMF(n.Right.PMF)
			if dec > 0 {
				total[n.Cond.Col] += dec
			}
		})
	}
	var sum float64
	for _, v := range total {
		sum += v
	}
	if sum > 0 {
		for i := range total {
			total[i] /= sum
		}
	}
	return total, nil
}

func giniOfPMF(pmf []float64) float64 {
	if pmf == nil {
		return 0
	}
	g := 1.0
	for _, p := range pmf {
		g -= p * p
	}
	return g
}

// RankedFeature pairs a column index with its importance score.
type RankedFeature struct {
	Col   int
	Score float64
}

// RankImportance returns features sorted by descending importance.
func RankImportance(importance []float64) []RankedFeature {
	out := make([]RankedFeature, len(importance))
	for i, s := range importance {
		out[i] = RankedFeature{Col: i, Score: s}
	}
	slices.SortFunc(out, func(a, b RankedFeature) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		return a.Col - b.Col
	})
	return out
}
