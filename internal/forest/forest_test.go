package forest

import (
	"testing"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

func TestSpecsDeterministicAndSampled(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{Name: "s", Rows: 100, NumNumeric: 16, NumClasses: 2, Seed: 61})
	schema := cluster.SchemaOf(tbl)
	cfg := Config{Trees: 5, Params: core.Defaults(), Bootstrap: true, Seed: 7}
	a := Specs(schema, cfg)
	b := Specs(schema, cfg)
	if len(a) != 5 {
		t.Fatalf("specs = %d", len(a))
	}
	for i := range a {
		// √16 = 4 columns per tree.
		if len(a[i].Params.Candidates) != 4 {
			t.Fatalf("tree %d sampled %d cols, want 4", i, len(a[i].Params.Candidates))
		}
		if a[i].Params.Seed != b[i].Params.Seed || a[i].Bag.Seed != b[i].Bag.Seed {
			t.Fatal("specs not deterministic")
		}
		if a[i].Bag.Sample != 100 {
			t.Fatalf("bootstrap sample = %d", a[i].Bag.Sample)
		}
		for j := 1; j < len(a[i].Params.Candidates); j++ {
			if a[i].Params.Candidates[j] <= a[i].Params.Candidates[j-1] {
				t.Fatal("candidates not sorted")
			}
		}
	}
	// Different trees get different column subsets with high probability.
	same := 0
	for i := 1; i < len(a); i++ {
		if equalInts(a[i].Params.Candidates, a[0].Params.Candidates) {
			same++
		}
	}
	if same == len(a)-1 {
		t.Fatal("all trees sampled identical columns")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestColFracVariants(t *testing.T) {
	if got := sampleSize(100, Config{ColFrac: 0.4}); got != 40 {
		t.Fatalf("40%% of 100 = %d", got)
	}
	if got := sampleSize(100, Config{ColFrac: 0}); got != 10 {
		t.Fatalf("sqrt(100) = %d", got)
	}
	if got := sampleSize(100, Config{ColFrac: -1}); got != 100 {
		t.Fatalf("disabled sampling = %d", got)
	}
	if got := sampleSize(3, Config{ColFrac: 0.01}); got != 1 {
		t.Fatalf("floor = %d", got)
	}
	if got := sampleSize(4, Config{ExtraTrees: true, ColFrac: 0.1}); got != 4 {
		t.Fatalf("extra-trees sampling = %d, want all", got)
	}
}

func TestLocalForestAccuracyBeatsSingleTree(t *testing.T) {
	train, test := synth.Generate(synth.Spec{
		Name: "rf", Rows: 6000, NumNumeric: 12, NumClasses: 2, ConceptDepth: 6, LabelNoise: 0.15, Seed: 62,
	}, 0.25)
	schema := cluster.SchemaOf(train)
	trainer := &Local{Table: train}

	single, err := Train(trainer, schema, Config{Trees: 1, Params: core.Defaults(), ColFrac: 0, Bootstrap: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Train(trainer, schema, Config{Trees: 25, Params: core.Defaults(), ColFrac: 0, Bootstrap: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a1, aN := single.Accuracy(test), many.Accuracy(test)
	if aN <= a1 {
		t.Fatalf("forest %.3f did not beat single bagged tree %.3f on noisy data", aN, a1)
	}
}

func TestForestRegression(t *testing.T) {
	train, test := synth.Generate(synth.Spec{
		Name: "rfreg", Rows: 5000, NumNumeric: 8, NumClasses: 0, ConceptDepth: 4, LabelNoise: 0.3, Seed: 63,
	}, 0.25)
	schema := cluster.SchemaOf(train)
	// ColFrac -1 disables column sampling: with only 8 features and a
	// depth-4 concept, √|A| = 3 columns per tree cannot cover the concept.
	f, err := Train(&Local{Table: train}, schema, Config{Trees: 10, Params: core.Defaults(), ColFrac: -1, Bootstrap: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rmse := f.RMSE(test); rmse > 3 {
		t.Fatalf("forest rmse %.3f too high", rmse)
	}
}

func TestExtraTreesForest(t *testing.T) {
	train, test := synth.Generate(synth.Spec{
		Name: "xtf", Rows: 5000, NumNumeric: 8, NumClasses: 2, ConceptDepth: 4, Seed: 64,
	}, 0.25)
	schema := cluster.SchemaOf(train)
	f, err := Train(&Local{Table: train}, schema, Config{Trees: 15, Params: core.Defaults(), ExtraTrees: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Completely-random splits are individually weak; the ensemble must
	// still clearly beat the 50% baseline.
	if acc := f.Accuracy(test); acc < 0.62 {
		t.Fatalf("extra-trees forest accuracy %.3f", acc)
	}
	for _, tr := range f.Trees {
		if err := tr.Validate(); err != nil {
			t.Fatalf("invalid member: %v", err)
		}
	}
}

func TestDistributedForestMatchesLocal(t *testing.T) {
	// The same specs through the cluster and the local trainer must yield
	// identical forests (the exactness claim lifted to ensembles).
	train := synth.GenerateTrain(synth.Spec{
		Name: "match", Rows: 4000, NumNumeric: 6, NumCategorical: 2, NumClasses: 2, ConceptDepth: 5, Seed: 65,
	})
	schema := cluster.SchemaOf(train)
	cfg := Config{Trees: 5, Params: core.Defaults(), ColFrac: 0, Bootstrap: true, Seed: 11}

	local, err := Train(&Local{Table: train}, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.NewInProcess(train,
		cluster.WithWorkers(3), cluster.WithCompers(2),
		cluster.WithPolicy(task.Policy{TauD: 500, TauDFS: 2000, NPool: 4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dist, err := Train(c, schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range local.Trees {
		if !dist.Trees[i].Equal(local.Trees[i]) {
			t.Fatalf("tree %d differs between cluster and local", i)
		}
	}
}

func TestTrainRejectsZeroTrees(t *testing.T) {
	tbl := synth.GenerateTrain(synth.Spec{Name: "z", Rows: 100, NumNumeric: 2, NumClasses: 2, Seed: 66})
	if _, err := Train(&Local{Table: tbl}, cluster.SchemaOf(tbl), Config{}); err == nil {
		t.Fatal("zero trees accepted")
	}
}

func TestPredictPMFSumsToOne(t *testing.T) {
	train, _ := synth.Generate(synth.Spec{
		Name: "pmf", Rows: 2000, NumNumeric: 5, NumClasses: 3, ConceptDepth: 3, Seed: 67,
	}, 0)
	f, err := Train(&Local{Table: train}, cluster.SchemaOf(train),
		Config{Trees: 7, Params: core.Defaults(), Bootstrap: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 50; r++ {
		pmf := f.PredictPMF(train, r, 0)
		sum := 0.0
		for _, p := range pmf {
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("row %d pmf sums to %g", r, sum)
		}
	}
}
