package chaostest

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

// TestPropertyFaultFreeEquivalence is the fault-free half of the harness: a
// quick-style property test asserting that on a clean in-memory fabric the
// distributed forest and boosted-model trainers equal the serial trainer
// bit-for-bit, over randomly drawn datasets, policies and cluster shapes.
// quick.Check draws trial seeds from a fixed-seed source, so the run is
// reproducible; every trial derives all of its parameters from its one seed,
// which is logged before the trial starts.
func TestPropertyFaultFreeEquivalence(t *testing.T) {
	trials := 5
	if testing.Short() {
		trials = 2
	}
	prop := func(seed int64) bool {
		propertyTrial(t, seed)
		return !t.Failed()
	}
	cfg := &quick.Config{MaxCount: trials, Rand: rand.New(rand.NewSource(0x7ee5))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("property violated: %v", err)
	}
}

// propertyTrial derives one random configuration from seed and runs it
// through the same harness as the grid, minus the chaos wrap (Raw).
func propertyTrial(t *testing.T, seed int64) {
	t.Helper()
	t.Logf("property trial seed=%d", seed)
	rng := rand.New(rand.NewSource(seed))

	classes := []int{0, 2, 2, 3}[rng.Intn(4)] // regression, binary (×2), 3-class
	spec := synth.Spec{
		Name:           fmt.Sprintf("prop-%d", seed),
		Rows:           400 + rng.Intn(900),
		NumNumeric:     3 + rng.Intn(6),
		NumCategorical: rng.Intn(4),
		CatLevels:      4 + rng.Intn(5),
		NumClasses:     classes,
		MissingRate:    float64(rng.Intn(3)) * 0.05,
		ConceptDepth:   4 + rng.Intn(3),
		LabelNoise:     0.05,
		Seed:           rng.Int63(),
	}
	tauD := 100 + rng.Intn(300)
	cell := Cell{
		Name: spec.Name,
		Raw:  true,
		Seed: seed,
		Data: spec,
		Cluster: cluster.Config{
			Workers:     2 + rng.Intn(4),
			Compers:     1 + rng.Intn(3),
			Replicas:    1 + rng.Intn(2),
			Policy:      task.Policy{TauD: tauD, TauDFS: 2*tauD + rng.Intn(800), NPool: 4 + rng.Intn(8)},
			Passthrough: rng.Intn(2) == 0, // cover both fabric serialisation modes
			JobTimeout:  time.Minute,
		},
		Trees:    1 + rng.Intn(2),
		MaxDepth: 5 + rng.Intn(4),
	}
	if rng.Intn(2) == 0 {
		cell.Bag = spec.Rows * 3 / 4
	}
	if classes != 3 { // boosting needs regression or binary labels
		cell.GBTRounds = 1 + rng.Intn(2)
	}
	Run(t, cell)
}
