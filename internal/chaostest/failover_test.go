package chaostest

import (
	"strings"
	"testing"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/obs"
	"treeserver/internal/synth"
	"treeserver/internal/task"
	"treeserver/internal/transport"
)

// failoverCell extends a grid Cell with a hot-standby failover trigger. Every
// cell runs DISKLESS — no CheckpointDir — so the streamed replica is the only
// recovery state and a passing cell structurally proves the standby finished
// the job without a restart-from-disk (no RestartMaster, no Resume).
type failoverCell struct {
	Cell
	// KillAfterTrees >= 0 kills the primary once that many trees are complete
	// and the job-start snapshot has been replicated. -1 never kills: the
	// cell's partition starves the lease instead, so a still-running primary
	// must be fenced out of the job (split-brain).
	KillAfterTrees int
	// WantFenced asserts the primary's Train error is the takeover fence
	// (generation supersession / endpoint rebind) rather than a plain kill.
	WantFenced bool
}

func failoverCells() []failoverCell {
	data := synth.Spec{Name: "fo", Rows: 2200, NumNumeric: 6, NumCategorical: 3,
		CatLevels: 5, NumClasses: 3, MissingRate: 0.05, ConceptDepth: 6, LabelNoise: 0.05, Seed: 41}
	cfg := cluster.Config{Workers: 4, Compers: 2, Replicas: 2,
		Policy:        task.Policy{TauD: 500, TauDFS: 1500, NPool: 2},
		Standby:       true,
		LeaseTTL:      200 * time.Millisecond,
		RejoinTimeout: 5 * time.Second,
		JobTimeout:    2 * time.Minute,
	}
	// The lossy cell needs master-side re-execution for dropped task traffic,
	// and periodic stream snapshots so a silently dropped job-start record is
	// re-sent rather than stranding the replica empty.
	lossy := cfg
	lossy.TaskRetry = 250 * time.Millisecond
	lossy.MaxTaskAttempts = 8
	lossy.CheckpointEvery = 50 * time.Millisecond
	return []failoverCell{
		{
			// Killed during construction of the first tree: the replica holds
			// only the job-start snapshot, so the promoted standby retrains
			// the entire forest from scratch. The delay-only plan (delays are
			// not faults) stretches the job past the first lease renewal so
			// the kill lands while tree 0 is still being built.
			Cell: Cell{Name: "failover-during-first-tree", Seed: 51, Data: data, Cluster: cfg,
				Plan: transport.FaultPlan{Name: "delays-only", Links: []transport.LinkFault{
					{From: "*", To: "*", Delay: 300 * time.Microsecond, Jitter: 300 * time.Microsecond}}},
				Trees: 8, Bag: 1600, MaxDepth: 8},
			KillAfterTrees: 0,
		},
		{
			// Killed mid-job on a lossy, laggy fabric: replicated trees come
			// back from the stream, the rest retrain through the chaos, and
			// any record the fabric ate is healed by periodic re-snapshots.
			Cell: Cell{Name: "failover-mid-job-chaos", Seed: 52, Data: data, Cluster: lossy,
				Plan: transport.FaultPlan{Name: "drops-delays", Links: []transport.LinkFault{
					{From: "*", To: "*", Drop: 0.01, Delay: 100 * time.Microsecond, Jitter: 300 * time.Microsecond}}},
				ExpectFaults: true, Trees: 6, Bag: 1600, MaxDepth: 8},
			KillAfterTrees: 2,
		},
		{
			// Split-brain: the fabric cuts every primary<->standby link after
			// the job-start records pass, while leaving the primary<->worker
			// links healthy. The primary keeps training, the standby's watched
			// lease lapses and it promotes anyway; the generation fence plus
			// the endpoint rebind must discard the stale primary mid-flight
			// and the promoted standby still finishes bit-identical.
			// The link delays stretch the job well past the lease lapse so a
			// real split-brain window exists: without them the primary would
			// finish the whole forest before the standby's watchdog fires.
			Cell: Cell{Name: "failover-split-brain", Seed: 53, Data: data, Cluster: cfg,
				Plan: transport.FaultPlan{Name: "split-brain",
					Links: []transport.LinkFault{
						{From: "*", To: "*", Delay: 500 * time.Microsecond, Jitter: 500 * time.Microsecond}},
					Partitions: []transport.Partition{
						{A: []string{cluster.MasterName}, B: []string{cluster.StandbyName},
							FromSeq: 6, UntilSeq: 1 << 30}}},
				ExpectFaults: true, Trees: 6, Bag: 1600, MaxDepth: 8},
			KillAfterTrees: -1,
			WantFenced:     true,
		},
	}
}

// TestStandbyFailover is the hot-standby equivalence grid: crash or partition
// the primary at the cell's chosen point and require the standby — fed only
// by the streamed checkpoint records, never by disk — to promote within a
// bounded stall and finish the forest bit-for-bit identical to the serial
// trainer.
func TestStandbyFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("failover grid skipped in -short mode")
	}
	for _, cell := range failoverCells() {
		cell := cell
		t.Run(cell.Name, func(t *testing.T) {
			t.Parallel()
			runFailover(t, cell)
		})
	}
}

func runFailover(t *testing.T, cell failoverCell) {
	tbl := synth.GenerateTrain(cell.Data)

	var chaos *transport.ChaosNetwork
	cfg := cell.Cluster
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = planTimeout(cell.Plan)
	}
	if cfg.CheckpointDir != "" {
		t.Fatal("failover cells must be diskless: the stream is the only recovery state")
	}
	if !cell.Raw {
		chaos = transport.NewChaosNetwork(cell.Seed, cell.Plan)
		cfg.WrapEndpoint = chaos.Wrap
	}
	reg := obs.NewRegistry()
	cfg.Observer = reg
	c, err := cluster.NewInProcess(tbl, cluster.WithConfig(cfg))
	if err != nil {
		failf(t, cell.Cell, chaos, "NewInProcess: %v", err)
	}
	defer c.Close()

	specs := forestSpecs(cell.Cell, tbl.NumRows())
	trainErr := make(chan error, 1)
	go func() {
		_, err := c.Train(specs)
		trainErr <- err
	}()

	// Trigger the failover. For kill cells, wait until the job-start snapshot
	// is replicated, at least one lease renewal has been acked (so the cell
	// exercises the renew/ack path, not just the initial grant), and the
	// crash point is reached — then fail-stop the primary. The split-brain
	// cell needs no help: its partition activates on its own link sequence
	// numbers.
	var stallFrom time.Time
	if cell.KillAfterTrees >= 0 {
		deadline := time.After(time.Minute)
		for {
			applied, _ := c.Standby.ReplicaStats()
			if applied >= 1 && reg.Snapshot().Master.LeaseAcks >= 1 &&
				c.Master.CompletedTrees() >= cell.KillAfterTrees {
				break
			}
			select {
			case err := <-trainErr:
				failf(t, cell.Cell, chaos, "job finished (err=%v) before the kill point", err)
			case <-deadline:
				failf(t, cell.Cell, chaos, "kill point (%d trees + replicated snapshot) not reached within 1m", cell.KillAfterTrees)
			case <-time.After(500 * time.Microsecond):
			}
		}
		stallFrom = time.Now()
		c.KillMaster()
		if err := <-trainErr; err == nil || !strings.Contains(err.Error(), "master stopped") {
			failf(t, cell.Cell, chaos, "killed Train returned %v, want 'master stopped'", err)
		}
	} else {
		stallFrom = time.Now()
	}

	// The stall must be bounded: lease lapse + watchdog tick + rejoin, not a
	// job-timeout crawl. The bound is deliberately generous (parallel -race
	// cells share the machine); the log line carries the measured value.
	promoteDeadline := time.After(time.Minute)
	for !c.Standby.Promoted() {
		select {
		case <-promoteDeadline:
			failf(t, cell.Cell, chaos, "standby never promoted after the primary was lost")
		case <-time.After(time.Millisecond):
		}
	}
	stall := time.Since(stallFrom)
	if stall > 20*time.Second {
		failf(t, cell.Cell, chaos, "failover stall %v exceeds the 20s bound", stall)
	}
	t.Logf("cell %q: failover stall (loss -> promotion) %v", cell.Name, stall)

	// A split-brain primary is still running when the standby promotes; the
	// takeover must evict it with the fence, not leave two masters driving
	// the same fleet.
	if cell.WantFenced {
		select {
		case err := <-trainErr:
			if err == nil || !strings.Contains(err.Error(), "fenced") {
				failf(t, cell.Cell, chaos, "stale primary's Train returned %v, want the takeover fence", err)
			}
		case <-time.After(time.Minute):
			failf(t, cell.Cell, chaos, "stale primary kept running unfenced after the takeover")
		}
	}

	select {
	case <-c.Standby.Done():
	case <-time.After(cfg.JobTimeout + time.Minute):
		failf(t, cell.Cell, chaos, "standby did not finish the job")
	}
	trees, err := c.Standby.Result()
	if err != nil {
		failf(t, cell.Cell, chaos, "standby takeover failed: %v", err)
	}

	for i, spec := range specs {
		serial := core.TrainLocal(tbl, spec.Bag.Rows(), spec.Params)
		if d := core.DiffTrees(serial, trees[i]); d != "" {
			failf(t, cell.Cell, chaos, "tree %d diverges from serial after failover:\n%s", i, d)
		}
	}

	// The whole fleet survived the failover and rejoined the promoted master.
	promoted := c.Standby.Master()
	if promoted == nil {
		failf(t, cell.Cell, chaos, "no promoted master after a completed takeover")
	}
	if alive := promoted.AliveWorkers(); len(alive) != cfg.Workers {
		failf(t, cell.Cell, chaos, "alive workers %v after rejoin, want all %d", alive, cfg.Workers)
	}

	s := reg.Snapshot().Master
	if s.Failovers != 1 {
		failf(t, cell.Cell, chaos, "telemetry: %d failovers, want 1", s.Failovers)
	}
	if s.StreamRecords < 1 || s.StreamApplied < 1 {
		failf(t, cell.Cell, chaos, "telemetry: %d records streamed / %d applied, want both >= 1", s.StreamRecords, s.StreamApplied)
	}
	if s.LeaseRenewals < 1 {
		failf(t, cell.Cell, chaos, "telemetry: no lease renewals before the failover")
	}
	// Diskless proof: not one checkpoint byte touched disk.
	if s.CheckpointSnapshots != 0 || s.CheckpointBytes != 0 {
		failf(t, cell.Cell, chaos, "telemetry: diskless cell wrote %d snapshots / %d bytes to disk", s.CheckpointSnapshots, s.CheckpointBytes)
	}
	if chaos != nil {
		if cell.ExpectFaults && chaos.Faults() == 0 {
			failf(t, cell.Cell, chaos, "plan injected no faults — cell is not testing anything")
		}
		t.Logf("cell %q: seed=%d, %d messages traced, %d faults injected", cell.Name, chaos.Seed(), len(chaos.Trace()), chaos.Faults())
	}
	verifyTelemetry(t, cell.Cell, chaos, reg)
	if cell.Verify != nil {
		cell.Verify(t, reg)
	}
}
