package chaostest

import (
	"testing"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/obs"
	"treeserver/internal/synth"
	"treeserver/internal/task"
	"treeserver/internal/transport"
)

// Gray-failure cells: a worker that never crashes but turns ~50× slow
// mid-job. Fail-stop detection sees nothing (pongs still arrive), so these
// cells prove the hedging/quarantine layer keeps the models bit-identical to
// the serial trainer while bounding the damage a straggler can do.

// grayLinks gives every link a small base latency so a multiplicative
// degradation has something to scale.
func grayLinks() []transport.LinkFault {
	return []transport.LinkFault{{From: "*", To: "*",
		Delay: 100 * time.Microsecond, Jitter: 100 * time.Microsecond}}
}

// degradeW2 turns worker 2 ~50× slow from its 30th send until its 220th,
// then heals it: the mid-job gray failure the tentpole is about.
func degradeW2() []transport.Degrade {
	return []transport.Degrade{{
		Name: cluster.WorkerName(2), Factor: 50,
		Delay: 6 * time.Millisecond, Jitter: time.Millisecond,
		AfterSends: 30, UntilSends: 800,
	}}
}

func grayCell(name string, seed int64, mut func(*Cell)) Cell {
	cell := Cell{
		Name: name,
		Seed: seed,
		Data: synth.Spec{Name: name, Rows: 1800, NumNumeric: 7, NumCategorical: 2,
			CatLevels: 5, NumClasses: 2, ConceptDepth: 5, LabelNoise: 0.05, Seed: 100 + seed},
		Cluster: cluster.Config{Workers: 5, Compers: 2, Replicas: 2,
			Policy:    task.Policy{TauD: 400, TauDFS: 1200, NPool: 8},
			TaskRetry: 600 * time.Millisecond, MaxTaskAttempts: 8},
		Plan: transport.FaultPlan{Name: name,
			Links: grayLinks(), Degrades: degradeW2()},
		ExpectFaults: true,
		Trees:        3, Bag: 1400, MaxDepth: 8,
	}
	if mut != nil {
		mut(&cell)
	}
	return cell
}

// TestGrayFailureHedging is the acceptance cell: worker 2 degrades ~50×
// mid-job and recovers; with hedging on, the job must stay bit-identical to
// the serial trainer (Run asserts that), win at least one hedge race, and
// finish within a bounded envelope of the fault-free wall-clock.
func TestGrayFailureHedging(t *testing.T) {
	// Fault-free reference: same cluster shape and hedging config, no faults
	// injected (hedging should simply never trigger).
	baseline := grayCell("gray-baseline", 20, func(c *Cell) {
		c.Cluster.HedgeFactor = 3
		c.Plan = transport.FaultPlan{Name: "gray-baseline", Links: grayLinks()}
		c.ExpectFaults = false
	})
	start := time.Now()
	t.Run(baseline.Name, func(t *testing.T) { Run(t, baseline) })
	faultFree := time.Since(start)

	var snap obs.MasterSnapshot
	degraded := grayCell("gray-hedge", 20, func(c *Cell) {
		c.Cluster.HedgeFactor = 3
		c.Verify = func(t *testing.T, reg *obs.Registry) {
			snap = reg.Snapshot().Master
		}
	})
	start = time.Now()
	t.Run(degraded.Name, func(t *testing.T) { Run(t, degraded) })
	elapsed := time.Since(start)

	if snap.HedgesLaunched < 1 || snap.HedgesWon < 1 {
		t.Fatalf("hedging: %d launched, %d won — want at least one winning hedge under a 50× straggler",
			snap.HedgesLaunched, snap.HedgesWon)
	}
	// The envelope has a fixed grace term so a near-zero baseline on a fast
	// machine cannot make the bound vacuous in the other direction.
	bound := 3*faultFree + 2*time.Second
	if elapsed > bound {
		t.Fatalf("degraded run took %v, exceeding the bounded envelope %v (fault-free %v)",
			elapsed, bound, faultFree)
	}
	t.Logf("fault-free %v, degraded %v; hedges launched=%d won=%d wasted=%d",
		faultFree, elapsed, snap.HedgesLaunched, snap.HedgesWon, snap.HedgesWasted)
}

// TestGrayFailureQuarantine runs the same degradation with straggler
// quarantine on: the slow worker's median-normalised score must drop below
// threshold and open its circuit, steering new placement away from it, while
// the trees stay bit-identical (quarantine only shifts placement preference).
func TestGrayFailureQuarantine(t *testing.T) {
	cell := grayCell("gray-quarantine", 21, func(c *Cell) {
		c.Cluster.Heartbeat = 4 * time.Millisecond
		c.Cluster.QuarantineThreshold = 0.3
		c.Verify = func(t *testing.T, reg *obs.Registry) {
			m := reg.Snapshot().Master
			if m.Quarantines < 1 {
				t.Fatalf("quarantine never opened for a 50× straggler (probes sent: %d)", m.ProbesSent)
			}
			if m.Quarantines > 0 && m.ProbesSent < 1 {
				t.Fatal("quarantine opened but no probation probes were sent")
			}
			t.Logf("quarantines=%d restores=%d probes=%d", m.Quarantines, m.QuarantineRestores, m.ProbesSent)
		}
	})
	Run(t, cell)
}

// TestGrayFailureHedgingOff proves the degradation chaos alone does not break
// equivalence: with HedgeFactor = 0 the per-attempt deadline is the only
// countermeasure and the models must still match the serial trainer exactly.
func TestGrayFailureHedgingOff(t *testing.T) {
	Run(t, grayCell("gray-hedge-off", 22, nil))
}
