package chaostest

import (
	"testing"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/synth"
	"treeserver/internal/task"
	"treeserver/internal/transport"
)

// histChaosPlan is the seeded drop+delay fabric the hist-mode cells train
// under: silent loss forces bin-round and task re-execution, delay+jitter
// reorders votes and histogram fetches.
func histChaosPlan() transport.FaultPlan {
	return transport.FaultPlan{Name: "hist-drops-delays", Links: []transport.LinkFault{{
		From: "*", To: "*", Drop: 0.02,
		Delay: 200 * time.Microsecond, Jitter: 500 * time.Microsecond,
	}}}
}

// TestHistModeDeterministic trains the same forest in hist mode twice under
// the chaos fabric with two different fault schedules and requires the
// results bit-for-bit identical: bins come from order-insensitively merged
// sketches, votes are flattened in sorted worker order, task re-execution
// recomputes identical histograms, and subtraction is bitwise-exact — so no
// fault timing may leak into the model. An exact-mode run on the same data
// anchors quality: held-out accuracy must stay within one point.
func TestHistModeDeterministic(t *testing.T) {
	spec := synth.Spec{Name: "histchaos", Rows: 4000, NumNumeric: 8, NumCategorical: 2,
		CatLevels: 5, NumClasses: 2, ConceptDepth: 6, LabelNoise: 0.05, Seed: 21}
	train, test := synth.Generate(spec, 0.2)
	n := train.NumRows()

	const trees = 3
	params := core.Defaults()
	params.MaxDepth = 8
	specs := make([]cluster.TreeSpec, trees)
	for i := range specs {
		specs[i] = cluster.TreeSpec{Params: params,
			Bag: cluster.BagSpec{NumRows: n, Sample: n * 3 / 4, Seed: int64(i)*7919 + 1}}
	}

	trainForest := func(mode cluster.SplitMode, chaosSeed int64) ([]*core.Tree, *transport.ChaosNetwork) {
		plan := histChaosPlan()
		chaos := transport.NewChaosNetwork(chaosSeed, plan)
		cfg := cluster.Config{
			Workers: 4, Compers: 2, Replicas: 2,
			// TauD = 1: every split goes through the column-task protocol the
			// hist mode replaces, never the serial subtree shortcut.
			Policy:          task.Policy{TauD: 1, TauDFS: n / 2, NPool: 8},
			TaskRetry:       250 * time.Millisecond,
			MaxTaskAttempts: 8,
			JobTimeout:      planTimeout(plan),
			WrapEndpoint:    chaos.Wrap,
			SplitMode:       mode,
		}
		if mode == cluster.SplitHist {
			cfg.MaxBins = 256
			cfg.TopK = 2
		}
		c, err := cluster.NewInProcess(train, cluster.WithConfig(cfg))
		if err != nil {
			t.Fatalf("NewInProcess(%v): %v", mode, err)
		}
		defer c.Close()
		forest, err := c.Train(specs)
		if err != nil {
			t.Fatalf("mode %v chaos seed %d: Train: %v\n\n%s", mode, chaosSeed, err, chaos.TraceTail(40))
		}
		return forest, chaos
	}

	histA, chaosA := trainForest(cluster.SplitHist, 101)
	histB, chaosB := trainForest(cluster.SplitHist, 202)
	for _, chaos := range []*transport.ChaosNetwork{chaosA, chaosB} {
		if chaos.Faults() == 0 {
			t.Fatalf("chaos seed %d injected no faults — the cell is not testing anything", chaos.Seed())
		}
	}
	for i := range histA {
		if d := core.DiffTrees(histA[i], histB[i]); d != "" {
			t.Fatalf("hist tree %d differs between chaos seeds %d and %d:\n%s\n\nREPRO plan=%s\n%s",
				i, chaosA.Seed(), chaosB.Seed(), d, chaosB.Plan(), chaosB.TraceTail(40))
		}
	}

	// Held-out hits are compared as integer counts: "within 1%" means the two
	// forests may disagree on at most 1 row in 100, with no float slop at the
	// boundary.
	hits := func(forest []*core.Tree) int {
		h := 0
		for r := 0; r < test.NumRows(); r++ {
			votes := make(map[int32]int, 2)
			for _, tr := range forest {
				votes[tr.PredictClass(test, r, 0)]++
			}
			best, bestN := int32(0), -1
			for c, v := range votes {
				if v > bestN || (v == bestN && c < best) {
					best, bestN = c, v
				}
			}
			if best == test.Y().Cats[r] {
				h++
			}
		}
		return h
	}

	exact, _ := trainForest(cluster.SplitExact, 303)
	exactHits, histHits := hits(exact), hits(histA)
	diff := exactHits - histHits
	if diff < 0 {
		diff = -diff
	}
	if tol := test.NumRows() / 100; diff > tol {
		t.Fatalf("held-out accuracy: exact %d/%d vs hist %d/%d (diff %d rows, want within %d)",
			exactHits, test.NumRows(), histHits, test.NumRows(), diff, tol)
	}
	t.Logf("hist deterministic across fault schedules; held-out hits exact %d/%d vs hist %d/%d",
		exactHits, test.NumRows(), histHits, test.NumRows())
}
