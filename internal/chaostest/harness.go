// Package chaostest is the distributed-vs-serial equivalence harness: it
// trains forests and boosted models on an in-process cluster whose fabric is
// wrapped in a seeded transport.ChaosNetwork, and asserts the resulting
// models are bit-for-bit identical (core.DiffTrees over Tree.Canon) to the
// single-threaded serial trainer on the same data.
//
// Every fault the fabric injects is a pure function of (seed, plan), so a
// failing cell prints exactly those two values plus the trace tail; re-running
// the named subtest replays the identical fault schedule.
package chaostest

import (
	"fmt"
	"testing"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/gbt"
	"treeserver/internal/obs"
	"treeserver/internal/synth"
	"treeserver/internal/transport"
)

// Cell is one grid configuration: a dataset, a cluster shape (τ_D, τ_dfs,
// replication k, retry policy), a fault plan, and the models to train.
type Cell struct {
	Name string
	// Seed drives the chaos fabric's fault draws (not the dataset, which has
	// its own seed in Data). Same (Seed, Plan) -> same fault schedule.
	Seed int64
	Data synth.Spec
	// Cluster is used as given except WrapEndpoint, which Run overrides with
	// the chaos fabric (unless Raw).
	Cluster cluster.Config
	Plan    transport.FaultPlan
	// Raw skips the chaos wrap entirely: the bare in-memory fabric, for
	// fault-free property trials.
	Raw bool
	// ExpectFaults asserts the plan actually injected something — a guard
	// against plans that silently match no links.
	ExpectFaults bool
	// Trees is the forest size (minimum 1); Bag > 0 bootstrap-samples that
	// many rows per tree, otherwise every tree sees all rows.
	Trees int
	Bag   int
	// MaxDepth bounds the forest trees (0 = core.Defaults' depth).
	MaxDepth int
	// GBTRounds > 0 additionally trains a boosted model through the cluster's
	// SetTarget protocol and compares it round-for-round with gbt.LocalEngine.
	// Requires a regression or binary-classification dataset. Note the forest
	// comparison always runs first: SetTarget permanently converts the
	// cluster to regression.
	GBTRounds int
	// Verify, when set, receives the cell's telemetry registry after the
	// standard checks — the gray-failure cells assert hedge and quarantine
	// counters here.
	Verify func(t *testing.T, reg *obs.Registry)
}

// planTimeout derives a cell's job timeout from its fault plan instead of a
// hard-coded constant: a fixed base budget plus a few hundred round-trips of
// the plan's worst per-message latency, so a cell whose links are configured
// slow gets proportionally more wall-clock before it is declared hung.
func planTimeout(plan transport.FaultPlan) time.Duration {
	base := 2 * time.Minute
	var worst time.Duration
	for _, l := range plan.Links {
		if d := l.Delay + l.Jitter; d > worst {
			worst = d
		}
	}
	for _, d := range plan.Degrades {
		extra := d.Delay + d.Jitter
		if d.Factor > 1 {
			for _, l := range plan.Links {
				if scaled := time.Duration(d.Factor * float64(l.Delay+l.Jitter)); scaled+d.Delay+d.Jitter > extra {
					extra = scaled + d.Delay + d.Jitter
				}
			}
		}
		if extra > worst {
			worst = extra
		}
	}
	return base + 400*worst
}

// failf reports a failure with everything needed to replay it: the cell
// name, the chaos seed, the fault plan, and the tail of the decision trace.
func failf(t *testing.T, cell Cell, chaos *transport.ChaosNetwork, format string, args ...any) {
	t.Helper()
	msg := fmt.Sprintf(format, args...)
	if cell.Raw || chaos == nil {
		t.Fatalf("cell %q (raw fabric, data seed %d): %s", cell.Name, cell.Data.Seed, msg)
	}
	t.Fatalf("cell %q: %s\n\nREPRO seed=%d plan=%s\nre-run: go test -race ./internal/chaostest -run 'TestEquivalenceGrid/%s'\n\n%s",
		cell.Name, msg, chaos.Seed(), chaos.Plan(), cell.Name, chaos.TraceTail(40))
}

// forestSpecs builds the cell's tree specs; the same specs drive both the
// distributed run and the serial reference.
func forestSpecs(cell Cell, numRows int) []cluster.TreeSpec {
	n := cell.Trees
	if n < 1 {
		n = 1
	}
	params := core.Defaults()
	if cell.MaxDepth > 0 {
		params.MaxDepth = cell.MaxDepth
	}
	specs := make([]cluster.TreeSpec, n)
	for i := range specs {
		bag := cluster.BagSpec{NumRows: numRows}
		if cell.Bag > 0 {
			bag.Sample = cell.Bag
			bag.Seed = cell.Seed + int64(i)*7919
		}
		specs[i] = cluster.TreeSpec{Params: params, Bag: bag}
	}
	return specs
}

// Run executes one cell: build the dataset, wrap the fabric, train
// distributed, train serial, diff bit-for-bit.
func Run(t *testing.T, cell Cell) {
	t.Helper()
	tbl := synth.GenerateTrain(cell.Data)

	var chaos *transport.ChaosNetwork
	cfg := cell.Cluster
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = planTimeout(cell.Plan)
	}
	if !cell.Raw {
		chaos = transport.NewChaosNetwork(cell.Seed, cell.Plan)
		cfg.WrapEndpoint = chaos.Wrap
	}
	// Every cell runs with live telemetry: the registry's atomics are hammered
	// by the same goroutines the chaos fabric perturbs, so the -race grid
	// doubles as the registry's concurrency certificate — and the bit-for-bit
	// equality assertions prove observation does not change the model.
	reg := obs.NewRegistry()
	cfg.Observer = reg
	c, err := cluster.NewInProcess(tbl, cluster.WithConfig(cfg))
	if err != nil {
		failf(t, cell, chaos, "NewInProcess: %v", err)
	}
	defer c.Close()

	// Forest: distributed vs core.TrainLocal, tree by tree.
	specs := forestSpecs(cell, tbl.NumRows())
	trees, err := c.Train(specs)
	if err != nil {
		failf(t, cell, chaos, "distributed Train: %v", err)
	}
	for i, spec := range specs {
		serial := core.TrainLocal(tbl, spec.Bag.Rows(), spec.Params)
		if d := core.DiffTrees(serial, trees[i]); d != "" {
			failf(t, cell, chaos, "tree %d diverges from serial:\n%s", i, d)
		}
	}

	// Boosting: the same rounds through SetTarget vs gbt.LocalEngine.
	if cell.GBTRounds > 0 {
		gcfg := gbt.Config{Rounds: cell.GBTRounds, MaxDepth: 4, Seed: cell.Seed}
		serial, err := gbt.Train(&gbt.LocalEngine{Table: tbl}, tbl, gcfg)
		if err != nil {
			failf(t, cell, chaos, "serial gbt.Train: %v", err)
		}
		dist, err := gbt.Train(c, tbl, gcfg)
		if err != nil {
			failf(t, cell, chaos, "distributed gbt.Train: %v", err)
		}
		if serial.Base != dist.Base {
			failf(t, cell, chaos, "gbt base: serial %x, distributed %x", serial.Base, dist.Base)
		}
		if len(serial.Trees) != len(dist.Trees) {
			failf(t, cell, chaos, "gbt rounds: serial %d, distributed %d", len(serial.Trees), len(dist.Trees))
		}
		for i := range serial.Trees {
			if d := core.DiffTrees(serial.Trees[i], dist.Trees[i]); d != "" {
				failf(t, cell, chaos, "gbt round %d diverges from serial:\n%s", i, d)
			}
		}
	}

	if chaos != nil {
		if cell.ExpectFaults && chaos.Faults() == 0 {
			failf(t, cell, chaos, "plan injected no faults — cell is not testing anything")
		}
		t.Logf("cell %q: seed=%d, %d messages traced, %d faults injected", cell.Name, chaos.Seed(), len(chaos.Trace()), chaos.Faults())
	}

	verifyTelemetry(t, cell, chaos, reg)
	if cell.Verify != nil {
		cell.Verify(t, reg)
	}
}

// verifyTelemetry asserts the snapshot invariants that must hold at
// quiescence after a successful job, whatever faults the fabric injected.
func verifyTelemetry(t *testing.T, cell Cell, chaos *transport.ChaosNetwork, reg *obs.Registry) {
	t.Helper()
	s := reg.Snapshot()
	m := s.Master
	if m.TasksPlanned <= 0 || m.TasksCompleted <= 0 {
		failf(t, cell, chaos, "telemetry: planned %d / completed %d tasks after a successful job", m.TasksPlanned, m.TasksCompleted)
	}
	if m.TasksConfirmed > m.TasksPlanned {
		failf(t, cell, chaos, "telemetry: %d confirms exceed %d plans", m.TasksConfirmed, m.TasksPlanned)
	}
	if m.TasksRetried < 0 || m.TasksSuperseded < 0 || s.Retries() < 0 {
		failf(t, cell, chaos, "telemetry: negative retry counts (%d/%d/%d)", m.TasksRetried, m.TasksSuperseded, s.Retries())
	}
	var comp float64
	for _, row := range s.MWork() {
		comp += row[0]
	}
	if comp <= 0 {
		failf(t, cell, chaos, "telemetry: measured M_work Comp column is zero after training")
	}
}
