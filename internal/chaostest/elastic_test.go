package chaostest

import (
	"errors"
	"strings"
	"testing"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/obs"
	"treeserver/internal/synth"
	"treeserver/internal/task"
	"treeserver/internal/transport"
)

// The elastic grid: live joins and graceful drains under fabric chaos. Every
// cell trains through churn and still requires the forest bit-for-bit
// identical to the serial trainer — membership is a placement concern, and
// placement must never affect split results.

// churnStep is one membership transition the runner performs while the
// forest job is in flight. Join steps grow the fleet by one; Drain steps
// retire the named worker. AfterTrees gates the step on job progress so the
// transition lands inside an active tree, not before the job starts.
type churnStep struct {
	Join       bool
	Drain      int // worker index, when !Join
	AfterTrees int
}

// elasticCell extends a grid Cell with a churn schedule and, optionally, a
// primary kill racing the first join (the failover-race cell).
type elasticCell struct {
	Cell
	Steps []churnStep
	// KillWithJoin fail-stops the primary right after the first join step is
	// launched, so the handshake races the standby takeover. Requires
	// Cluster.Standby.
	KillWithJoin bool
}

func elasticData() synth.Spec {
	return synth.Spec{Name: "elastic", Rows: 2400, NumNumeric: 6, NumCategorical: 3,
		CatLevels: 5, NumClasses: 3, MissingRate: 0.05, ConceptDepth: 6, LabelNoise: 0.05, Seed: 61}
}

func elasticCells() []elasticCell {
	data := elasticData()
	cfg := cluster.Config{Workers: 4, Compers: 2, Replicas: 2,
		Policy:          task.Policy{TauD: 500, TauDFS: 1500, NPool: 2},
		TaskRetry:       250 * time.Millisecond,
		MaxTaskAttempts: 8,
		JobTimeout:      2 * time.Minute,
	}
	drops := transport.FaultPlan{Name: "drops-delays", Links: []transport.LinkFault{
		{From: "*", To: "*", Drop: 0.01, Delay: 100 * time.Microsecond, Jitter: 300 * time.Microsecond}}}
	delays := transport.FaultPlan{Name: "delays-only", Links: []transport.LinkFault{
		{From: "*", To: "*", Delay: 300 * time.Microsecond, Jitter: 300 * time.Microsecond}}}
	return []elasticCell{
		{
			// A worker joins mid-forest on a lossy, laggy fabric: every
			// handshake message (request, accept, column copies, ready, admit)
			// can drop, and the joiner's retry loop must converge anyway.
			Cell: Cell{Name: "elastic-join-chaos", Seed: 71, Data: data, Cluster: cfg,
				Plan: drops, ExpectFaults: true, Trees: 8, Bag: 1600, MaxDepth: 8},
			Steps: []churnStep{{Join: true, AfterTrees: 1}},
		},
		{
			// A worker is drained while a tree is actively being built: its
			// in-flight attempts finish or are re-executed away, its
			// last-replica columns land on survivors (ack-confirmed through
			// the drops), and the job never notices.
			Cell: Cell{Name: "elastic-drain-active-tree", Seed: 72, Data: data, Cluster: cfg,
				Plan: drops, ExpectFaults: true, Trees: 8, Bag: 1600, MaxDepth: 8},
			Steps: []churnStep{{Drain: 1, AfterTrees: 1}},
		},
		{
			// Churn storm: join, drain a founder, join again, drain another
			// founder — the fleet rolls over under drops while the forest
			// trains. Half the original machines retire; the forest must not
			// show it.
			Cell: Cell{Name: "elastic-churn-storm", Seed: 73, Data: data, Cluster: cfg,
				Plan: drops, ExpectFaults: true, Trees: 10, Bag: 1600, MaxDepth: 8},
			Steps: []churnStep{
				{Join: true, AfterTrees: 1},
				{Drain: 0, AfterTrees: 2},
				{Join: true, AfterTrees: 3},
				{Drain: 1, AfterTrees: 4},
			},
		},
		{
			// Join racing master failover: the primary is killed the moment
			// the join handshake launches. Whether the membership record
			// reached the standby or not, the joiner's retry loop must
			// converge against the promoted master and the forest stays
			// bit-identical.
			Cell: func() Cell {
				c := cfg
				c.Standby = true
				c.LeaseTTL = 200 * time.Millisecond
				c.RejoinTimeout = 5 * time.Second
				c.CheckpointEvery = 50 * time.Millisecond
				return Cell{Name: "elastic-join-failover-race", Seed: 74, Data: data, Cluster: c,
					Plan: delays, Trees: 8, Bag: 1600, MaxDepth: 8}
			}(),
			Steps:        []churnStep{{Join: true, AfterTrees: 1}},
			KillWithJoin: true,
		},
	}
}

// TestElasticChurn is the elastic-fleet equivalence grid.
func TestElasticChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("elastic grid skipped in -short mode")
	}
	for _, cell := range elasticCells() {
		cell := cell
		t.Run(cell.Name, func(t *testing.T) {
			t.Parallel()
			runElastic(t, cell)
		})
	}
}

var errJoinNotJoined = errors.New("join returned nil error but the worker is not admitted")

// activeMasterOf resolves the acting master: the promoted standby's after a
// failover, the original otherwise.
func activeMasterOf(c *cluster.Cluster) *cluster.Master {
	if c.Standby != nil {
		if m := c.Standby.Master(); m != nil {
			return m
		}
	}
	return c.Master
}

func runElastic(t *testing.T, cell elasticCell) {
	tbl := synth.GenerateTrain(cell.Data)

	var chaos *transport.ChaosNetwork
	cfg := cell.Cluster
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = planTimeout(cell.Plan)
	}
	if !cell.Raw {
		chaos = transport.NewChaosNetwork(cell.Seed, cell.Plan)
		cfg.WrapEndpoint = chaos.Wrap
	}
	reg := obs.NewRegistry()
	cfg.Observer = reg
	c, err := cluster.NewInProcess(tbl, cluster.WithConfig(cfg))
	if err != nil {
		failf(t, cell.Cell, chaos, "NewInProcess: %v", err)
	}
	defer c.Close()

	specs := forestSpecs(cell.Cell, tbl.NumRows())
	trainErr := make(chan error, 1)
	trees := make(chan []*core.Tree, 1)
	go func() {
		got, err := c.Train(specs)
		trees <- got
		trainErr <- err
	}()

	// Drive the churn schedule against the running job.
	wantJoins, wantDrains := 0, 0
	drained := map[int]bool{}
	for _, step := range cell.Steps {
		deadline := time.After(time.Minute)
		for activeMasterOf(c).CompletedTrees() < step.AfterTrees {
			select {
			case err := <-trainErr:
				failf(t, cell.Cell, chaos, "job finished (err=%v) before churn step at %d trees", err, step.AfterTrees)
			case <-deadline:
				failf(t, cell.Cell, chaos, "churn gate (%d trees) not reached within 1m", step.AfterTrees)
			case <-time.After(500 * time.Microsecond):
			}
		}
		if step.Join {
			wantJoins++
			if cell.KillWithJoin {
				// Race the handshake against the takeover: launch the join,
				// fail-stop the primary, and require the retry loop to
				// converge on the promoted master.
				joinErr := make(chan error, 1)
				go func() {
					w, err := c.Join()
					if err == nil && !w.Joined() {
						err = errJoinNotJoined
					}
					joinErr <- err
				}()
				c.KillMaster()
				if err := <-trainErr; err == nil || !strings.Contains(err.Error(), "master stopped") {
					failf(t, cell.Cell, chaos, "killed Train returned %v, want 'master stopped'", err)
				}
				if err := <-joinErr; err != nil {
					failf(t, cell.Cell, chaos, "join racing the failover: %v", err)
				}
				continue
			}
			w, err := c.Join()
			if err != nil {
				failf(t, cell.Cell, chaos, "join: %v", err)
			}
			if !w.Joined() {
				failf(t, cell.Cell, chaos, "join returned nil error but the worker is not admitted")
			}
		} else {
			wantDrains++
			drained[step.Drain] = true
			if err := c.Drain(step.Drain); err != nil {
				failf(t, cell.Cell, chaos, "drain worker %d: %v", step.Drain, err)
			}
		}
	}

	// Collect the forest: from the primary's Train call, or — in the
	// failover-race cell — from the promoted standby.
	var got []*core.Tree
	if cell.KillWithJoin {
		select {
		case <-c.Standby.Done():
		case <-time.After(cfg.JobTimeout + time.Minute):
			failf(t, cell.Cell, chaos, "standby did not finish the job")
		}
		got, err = c.Standby.Result()
		if err != nil {
			failf(t, cell.Cell, chaos, "standby takeover failed: %v", err)
		}
	} else {
		got = <-trees
		if err := <-trainErr; err != nil {
			failf(t, cell.Cell, chaos, "distributed Train through churn: %v", err)
		}
	}

	// The paper's exactness claim must survive the churn.
	for i, spec := range specs {
		serial := core.TrainLocal(tbl, spec.Bag.Rows(), spec.Params)
		if d := core.DiffTrees(serial, got[i]); d != "" {
			failf(t, cell.Cell, chaos, "tree %d diverges from serial through churn:\n%s", i, d)
		}
	}

	// Fleet invariants at quiescence: drained workers hold nothing and are
	// not alive; every column keeps full replication among alive workers;
	// admitted joiners hold real replicas.
	m := activeMasterOf(c)
	alive := map[int]bool{}
	for _, w := range m.AliveWorkers() {
		alive[w] = true
	}
	for w := range drained {
		if alive[w] {
			failf(t, cell.Cell, chaos, "drained worker %d still alive", w)
		}
	}
	p := m.PlacementSnapshot()
	joinerCols := 0
	for col, owners := range p.Owners {
		if len(owners) < cfg.Replicas {
			failf(t, cell.Cell, chaos, "column %d under-replicated after churn: owners %v", col, owners)
		}
		for _, o := range owners {
			if !alive[o] {
				failf(t, cell.Cell, chaos, "column %d owned by non-alive worker %d", col, o)
			}
			if o >= cfg.Workers {
				joinerCols++
			}
		}
	}
	if wantJoins > 0 && joinerCols == 0 {
		failf(t, cell.Cell, chaos, "no column replica landed on any joined worker")
	}

	// Elastic telemetry: the counters account for exactly the schedule, all
	// drains were graceful, and rebalanced columns back the joiners' replicas.
	s := reg.Snapshot().Master
	if cell.KillWithJoin {
		// The handshake may straddle the takeover: the promoted master's
		// fresh admission is what must be counted, at least once.
		if s.Joins < int64(wantJoins) {
			failf(t, cell.Cell, chaos, "telemetry: %d joins, want >= %d", s.Joins, wantJoins)
		}
	} else if s.Joins != int64(wantJoins) {
		failf(t, cell.Cell, chaos, "telemetry: %d joins, want %d", s.Joins, wantJoins)
	}
	if s.Drains != int64(wantDrains) {
		failf(t, cell.Cell, chaos, "telemetry: %d drains, want %d", s.Drains, wantDrains)
	}
	if s.DrainSheds != 0 {
		failf(t, cell.Cell, chaos, "telemetry: %d force-sheds — drains were not graceful", s.DrainSheds)
	}
	if wantJoins > 0 && s.RebalancedColumns < 1 {
		failf(t, cell.Cell, chaos, "telemetry: joins admitted but no columns rebalanced")
	}
	if s.JoinRejects != 0 {
		failf(t, cell.Cell, chaos, "telemetry: %d join rejections on an uncapped fleet", s.JoinRejects)
	}

	if chaos != nil {
		if cell.ExpectFaults && chaos.Faults() == 0 {
			failf(t, cell.Cell, chaos, "plan injected no faults — cell is not testing anything")
		}
		t.Logf("cell %q: seed=%d, %d messages traced, %d faults injected", cell.Name, chaos.Seed(), len(chaos.Trace()), chaos.Faults())
	}
	verifyTelemetry(t, cell.Cell, chaos, reg)
}
