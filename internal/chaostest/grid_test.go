package chaostest

import (
	"testing"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/synth"
	"treeserver/internal/task"
	"treeserver/internal/transport"
)

// grid is the chaos matrix: each cell varies the dataset, the task policy
// (τ_D, τ_dfs), the replication factor k, the retry policy, and the fault
// plan. Every cell must produce models bit-for-bit identical to the serial
// trainer. Plans deliberately exclude ExtraTrees: completely-random split
// drawing consumes fresh rng draws per task execution, so task re-execution
// legitimately changes those trees and there is no serial oracle for them.
func grid() []Cell {
	everyLink := func(f transport.LinkFault) []transport.LinkFault {
		f.From, f.To = "*", "*"
		return []transport.LinkFault{f}
	}
	return []Cell{
		{
			// Clean fabric through the chaos wrapper: proves the decorator is
			// transparent when the plan is empty, and anchors the grid.
			Name: "baseline",
			Seed: 1,
			Data: synth.Spec{Name: "base", Rows: 2000, NumNumeric: 7, NumCategorical: 3,
				CatLevels: 6, NumClasses: 2, MissingRate: 0.05, ConceptDepth: 6, LabelNoise: 0.05, Seed: 11},
			Cluster: cluster.Config{Workers: 4, Compers: 2, Replicas: 2,
				Policy: task.Policy{TauD: 500, TauDFS: 1500, NPool: 8},
			},
			Plan:  transport.FaultPlan{Name: "none"},
			Trees: 3, Bag: 1500, MaxDepth: 8,
			GBTRounds: 2,
		},
		{
			// Silent message loss on every link; master-side task re-execution
			// is the only recovery (send-level retry cannot see a drop).
			Name: "drops",
			Seed: 2,
			Data: synth.Spec{Name: "drops", Rows: 1600, NumNumeric: 8, NumCategorical: 2,
				CatLevels: 5, NumClasses: 2, ConceptDepth: 5, LabelNoise: 0.05, Seed: 12},
			Cluster: cluster.Config{Workers: 4, Compers: 2, Replicas: 2,
				Policy:    task.Policy{TauD: 400, TauDFS: 1200, NPool: 8},
				TaskRetry: 250 * time.Millisecond, MaxTaskAttempts: 8},
			Plan:         transport.FaultPlan{Name: "drops", Links: everyLink(transport.LinkFault{Drop: 0.03})},
			ExpectFaults: true,
			Trees:        2, Bag: 1200, MaxDepth: 8,
		},
		{
			// The required drops+delays combination, plus duplication and a
			// dataset with missing values and three classes.
			Name: "drops-delays",
			Seed: 3,
			Data: synth.Spec{Name: "dd", Rows: 1800, NumNumeric: 6, NumCategorical: 4,
				CatLevels: 7, NumClasses: 3, MissingRate: 0.1, ConceptDepth: 6, LabelNoise: 0.05, Seed: 13},
			Cluster: cluster.Config{Workers: 4, Compers: 2, Replicas: 2,
				Policy:    task.Policy{TauD: 600, TauDFS: 1800, NPool: 8},
				TaskRetry: 300 * time.Millisecond, MaxTaskAttempts: 8},
			Plan: transport.FaultPlan{Name: "drops-delays",
				Links: everyLink(transport.LinkFault{Drop: 0.02, Dup: 0.02,
					Delay: 200 * time.Microsecond, Jitter: 500 * time.Microsecond})},
			ExpectFaults: true,
			Trees:        2, Bag: 1400, MaxDepth: 8,
		},
		{
			// Duplication and reordering only — nothing is ever lost, so this
			// cell runs with re-execution OFF: protocol idempotence alone must
			// keep the models identical.
			Name: "dup-reorder",
			Seed: 4,
			Data: synth.Spec{Name: "dupre", Rows: 1500, NumNumeric: 9, NumCategorical: 0,
				NumClasses: 2, ConceptDepth: 5, LabelNoise: 0.05, Seed: 14},
			Cluster: cluster.Config{Workers: 4, Compers: 2, Replicas: 2,
				Policy: task.Policy{TauD: 300, TauDFS: 1000, NPool: 8},
			},
			Plan:         transport.FaultPlan{Name: "dup-reorder", Links: everyLink(transport.LinkFault{Dup: 0.05, Reorder: 0.04})},
			ExpectFaults: true,
			Trees:        2, Bag: 1100, MaxDepth: 8,
		},
		{
			// A seq-windowed partition between the two worker halves: early
			// worker-to-worker row traffic dies until each cut link's sequence
			// number clears the window. k = 3 so column data stays reachable.
			// The window must stay well under MaxTaskAttempts: a sparse cut
			// link (one row-response per retry) advances roughly one seq per
			// attempt, so escape costs up to UntilSeq re-executions.
			Name: "partition",
			Seed: 5,
			Data: synth.Spec{Name: "part", Rows: 1700, NumNumeric: 7, NumCategorical: 2,
				CatLevels: 5, NumClasses: 2, ConceptDepth: 5, LabelNoise: 0.05, Seed: 15},
			Cluster: cluster.Config{Workers: 4, Compers: 2, Replicas: 3,
				Policy:    task.Policy{TauD: 400, TauDFS: 1300, NPool: 8},
				TaskRetry: 200 * time.Millisecond, MaxTaskAttempts: 12},
			Plan: transport.FaultPlan{Name: "partition", Partitions: []transport.Partition{{
				A:       []string{cluster.WorkerName(0), cluster.WorkerName(1)},
				B:       []string{cluster.WorkerName(2), cluster.WorkerName(3)},
				FromSeq: 0, UntilSeq: 6,
			}}},
			ExpectFaults: true,
			Trees:        3, Bag: 1300, MaxDepth: 8,
		},
		{
			// The required mid-training kill: worker 2 fail-stops after its
			// 60th send (early in the forest). The heartbeat prober must
			// detect it, re-replicate its columns from the k = 2 survivors and
			// requeue its tasks; boosting then runs on the 3-worker remnant.
			Name: "kill",
			Seed: 6,
			Data: synth.Spec{Name: "kill", Rows: 1600, NumNumeric: 8, NumCategorical: 2,
				CatLevels: 6, NumClasses: 2, ConceptDepth: 5, LabelNoise: 0.05, Seed: 16},
			Cluster: cluster.Config{Workers: 4, Compers: 2, Replicas: 2,
				Policy:    task.Policy{TauD: 400, TauDFS: 1200, NPool: 8},
				Heartbeat: 5 * time.Millisecond,
				TaskRetry: 400 * time.Millisecond, MaxTaskAttempts: 8},
			Plan: transport.FaultPlan{Name: "kill-w2",
				Kills: []transport.Kill{{Name: cluster.WorkerName(2), AfterSends: 60}}},
			ExpectFaults: true,
			Trees:        3, Bag: 1200, MaxDepth: 8,
			GBTRounds: 2,
		},
		{
			// Explicit send errors at a brutal rate: the transport's bounded
			// retry absorbs almost all of them; the rare send that fails every
			// attempt is recovered by task re-execution. Regression dataset,
			// k = 1 (no loss of endpoints, so no replication needed).
			Name: "senderr",
			Seed: 7,
			Data: synth.Spec{Name: "serr", Rows: 1400, NumNumeric: 8, NumCategorical: 2,
				CatLevels: 5, NumClasses: 0, ConceptDepth: 5, Seed: 17},
			Cluster: cluster.Config{Workers: 4, Compers: 2, Replicas: 1,
				Policy:    task.Policy{TauD: 350, TauDFS: 1100, NPool: 8},
				TaskRetry: 300 * time.Millisecond, MaxTaskAttempts: 8},
			Plan:         transport.FaultPlan{Name: "senderr", Links: everyLink(transport.LinkFault{SendErr: 0.25})},
			ExpectFaults: true,
			Trees:        2, Bag: 1000, MaxDepth: 8,
		},
		{
			// Boosting under loss: three SetTarget rounds over a dropping,
			// duplicating fabric exercise the target resend/ack protocol.
			Name: "gbt-drops",
			Seed: 8,
			Data: synth.Spec{Name: "gbtd", Rows: 1500, NumNumeric: 7, NumCategorical: 3,
				CatLevels: 6, NumClasses: 2, ConceptDepth: 5, LabelNoise: 0.05, Seed: 18},
			Cluster: cluster.Config{Workers: 5, Compers: 2, Replicas: 2,
				Policy:    task.Policy{TauD: 450, TauDFS: 1350, NPool: 8},
				TaskRetry: 250 * time.Millisecond, MaxTaskAttempts: 8},
			Plan:         transport.FaultPlan{Name: "gbt-drops", Links: everyLink(transport.LinkFault{Drop: 0.02, Dup: 0.02})},
			ExpectFaults: true,
			Trees:        1, MaxDepth: 8,
			GBTRounds: 3,
		},
	}
}

// TestEquivalenceGrid runs every chaos cell. Cells run sequentially so each
// gets the machine to itself — fault *decisions* are deterministic in
// (seed, plan) regardless, but sequential runs keep wall-clock behaviour
// (heartbeats, retry deadlines) far away from timing edges.
func TestEquivalenceGrid(t *testing.T) {
	cells := grid()
	if len(cells) < 6 {
		t.Fatalf("grid has %d cells, want >= 6", len(cells))
	}
	for _, cell := range cells {
		t.Run(cell.Name, func(t *testing.T) {
			Run(t, cell)
		})
	}
}
