package chaostest

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/obs"
	"treeserver/internal/synth"
	"treeserver/internal/task"
	"treeserver/internal/transport"
)

// masterKillCell extends a grid Cell with a crash point and an optional
// checkpoint-tampering step applied while the master is down. Every cell
// must still produce a forest bit-identical to the serial trainer.
type masterKillCell struct {
	Cell
	// KillAfterTrees is how many trees must be durably complete before the
	// master is killed. 0 kills as soon as the job-start snapshot is on disk
	// — i.e. during construction of the first tree.
	KillAfterTrees int
	// CheckpointEvery enables periodic snapshots (0 = tree boundaries only).
	CheckpointEvery time.Duration
	// Tamper, when set, damages the checkpoint directory between the kill
	// and the restart — the recovery must survive it.
	Tamper func(t *testing.T, dir string)
	// WantSkippedFiles / WantTruncated assert the restore telemetry noticed
	// the damage Tamper inflicted.
	WantSkippedFiles bool
	WantTruncated    bool
}

func masterKillCells() []masterKillCell {
	data := synth.Spec{Name: "mk", Rows: 2200, NumNumeric: 6, NumCategorical: 3,
		CatLevels: 5, NumClasses: 3, MissingRate: 0.05, ConceptDepth: 6, LabelNoise: 0.05, Seed: 21}
	cfg := cluster.Config{Workers: 4, Compers: 2, Replicas: 2,
		Policy:     task.Policy{TauD: 500, TauDFS: 1500, NPool: 2},
		JobTimeout: 2 * time.Minute}
	// The lossy cell needs master-side re-execution: send-level retries
	// cannot see a silently dropped delivery.
	lossyCfg := cfg
	lossyCfg.TaskRetry = 250 * time.Millisecond
	lossyCfg.MaxTaskAttempts = 8
	return []masterKillCell{
		{
			// Killed during construction of the first tree: nothing is
			// complete yet, so recovery restarts the whole job from the
			// job-start snapshot.
			Cell: Cell{Name: "kill-during-first-tree", Seed: 31, Data: data, Cluster: cfg,
				Raw: true, Trees: 5, Bag: 1600, MaxDepth: 8},
			KillAfterTrees: 0,
		},
		{
			// Killed at a tree boundary with a lossy, laggy fabric: completed
			// trees come back from disk, the rest retrain through the chaos.
			Cell: Cell{Name: "kill-mid-job-chaos", Seed: 32, Data: data, Cluster: lossyCfg,
				Plan: transport.FaultPlan{Name: "drops-delays", Links: []transport.LinkFault{
					{From: "*", To: "*", Drop: 0.01, Delay: 100 * time.Microsecond, Jitter: 300 * time.Microsecond}}},
				Trees: 6, Bag: 1600, MaxDepth: 8},
			KillAfterTrees: 2,
		},
		{
			// The newest snapshot file is corrupted while the master is down:
			// Load must reject it by CRC and fall back to the previous file.
			Cell: Cell{Name: "kill-corrupt-newest", Seed: 33, Data: data, Cluster: cfg,
				Raw: true, Trees: 5, Bag: 1600, MaxDepth: 8},
			KillAfterTrees:   1,
			CheckpointEvery:  2 * time.Millisecond,
			Tamper:           corruptNewestCheckpoint,
			WantSkippedFiles: true,
		},
		{
			// The newest file loses its tail (torn write): the valid record
			// prefix is kept, the torn record is discarded.
			Cell: Cell{Name: "kill-truncated-tail", Seed: 34, Data: data, Cluster: cfg,
				Raw: true, Trees: 5, Bag: 1600, MaxDepth: 8},
			KillAfterTrees: 2,
			Tamper:         truncateNewestCheckpoint,
			WantTruncated:  true,
		},
	}
}

// TestMasterKillRecovery is the crash-restart equivalence grid: kill the
// master at the cell's chosen point, optionally damage the checkpoint
// directory, restart, Resume, and diff the final forest bit-for-bit against
// the serial trainer.
func TestMasterKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("master-kill grid skipped in -short mode")
	}
	for _, cell := range masterKillCells() {
		cell := cell
		t.Run(cell.Name, func(t *testing.T) {
			t.Parallel()
			runMasterKill(t, cell)
		})
	}
}

func runMasterKill(t *testing.T, cell masterKillCell) {
	tbl := synth.GenerateTrain(cell.Data)
	dir := t.TempDir()

	var chaos *transport.ChaosNetwork
	cfg := cell.Cluster
	if !cell.Raw {
		chaos = transport.NewChaosNetwork(cell.Seed, cell.Plan)
		cfg.WrapEndpoint = chaos.Wrap
	}
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = cell.CheckpointEvery
	reg := obs.NewRegistry()
	cfg.Observer = reg
	c, err := cluster.NewInProcess(tbl, cluster.WithConfig(cfg))
	if err != nil {
		failf(t, cell.Cell, chaos, "NewInProcess: %v", err)
	}
	defer c.Close()

	specs := forestSpecs(cell.Cell, tbl.NumRows())
	trainErr := make(chan error, 1)
	go func() {
		_, err := c.Train(specs)
		trainErr <- err
	}()

	// Kill once the crash point is reached: the job-start snapshot is
	// durable and KillAfterTrees trees have completed.
	deadline := time.After(time.Minute)
	for {
		if len(checkpointFiles(t, dir)) > 0 && c.Master.CompletedTrees() >= cell.KillAfterTrees {
			break
		}
		select {
		case err := <-trainErr:
			failf(t, cell.Cell, chaos, "job finished (err=%v) before the kill point", err)
		case <-deadline:
			failf(t, cell.Cell, chaos, "kill point (%d trees) not reached within 1m", cell.KillAfterTrees)
		case <-time.After(500 * time.Microsecond):
		}
	}
	c.KillMaster()
	if err := <-trainErr; err == nil || !strings.Contains(err.Error(), "master stopped") {
		failf(t, cell.Cell, chaos, "killed Train returned %v, want 'master stopped'", err)
	}

	if cell.Tamper != nil {
		cell.Tamper(t, dir)
	}

	if err := c.RestartMaster(); err != nil {
		failf(t, cell.Cell, chaos, "RestartMaster: %v", err)
	}
	trees, err := c.Resume()
	if err != nil {
		failf(t, cell.Cell, chaos, "Resume: %v", err)
	}

	for i, spec := range specs {
		serial := core.TrainLocal(tbl, spec.Bag.Rows(), spec.Params)
		if d := core.DiffTrees(serial, trees[i]); d != "" {
			failf(t, cell.Cell, chaos, "tree %d diverges from serial after crash-restart:\n%s", i, d)
		}
	}

	// The workers lived through the master crash and all rejoined.
	if alive := c.Master.AliveWorkers(); len(alive) != cfg.Workers {
		failf(t, cell.Cell, chaos, "alive workers %v after rejoin, want all %d", alive, cfg.Workers)
	}
	s := reg.Snapshot().Master
	if s.Restores != 1 {
		failf(t, cell.Cell, chaos, "telemetry: %d restores, want 1", s.Restores)
	}
	if cell.WantSkippedFiles && s.RestoreSkippedFiles == 0 {
		failf(t, cell.Cell, chaos, "telemetry: corrupted file was not skipped")
	}
	if cell.WantTruncated && s.RestoreTruncatedRecords == 0 {
		failf(t, cell.Cell, chaos, "telemetry: torn tail was not detected")
	}
	verifyTelemetry(t, cell.Cell, chaos, reg)
}

// checkpointFiles lists the cell's snapshot files, oldest first.
func checkpointFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading checkpoint dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tsck") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	return files
}

// corruptNewestCheckpoint flips a byte inside the newest file's snapshot
// record, invalidating its CRC so Load must fall back to the previous file.
func corruptNewestCheckpoint(t *testing.T, dir string) {
	files := checkpointFiles(t, dir)
	if len(files) < 2 {
		t.Fatalf("corruption cell needs >= 2 checkpoint files, have %d (CheckpointEvery too slow?)", len(files))
	}
	name := files[len(files)-1]
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	data[16] ^= 0xff
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// truncateNewestCheckpoint tears the last record of the newest file, as a
// crash mid-append would.
func truncateNewestCheckpoint(t *testing.T, dir string) {
	files := checkpointFiles(t, dir)
	name := files[len(files)-1]
	info, err := os.Stat(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(name, info.Size()-7); err != nil {
		t.Fatal(err)
	}
}
