package sketch

import (
	"math/rand"
	"sort"
	"testing"
)

// exactWeightedQuantile computes the true value at the given weight rank.
func exactWeightedQuantile(values, weights []float64, frac float64) float64 {
	type pair struct{ v, w float64 }
	ps := make([]pair, len(values))
	var total float64
	for i := range values {
		ps[i] = pair{values[i], weights[i]}
		total += weights[i]
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].v < ps[j].v })
	target := frac * total
	var cum float64
	for _, p := range ps {
		cum += p.w
		if cum >= target {
			return p.v
		}
	}
	return ps[len(ps)-1].v
}

func TestSketchExactWhenSmall(t *testing.T) {
	s := New(64)
	for i := 10; i >= 1; i-- {
		s.Add(float64(i), 1)
	}
	vals := s.Values()
	if len(vals) != 10 {
		t.Fatalf("values = %v", vals)
	}
	for i, v := range vals {
		if v != float64(i+1) {
			t.Fatalf("values not sorted/complete: %v", vals)
		}
	}
	if s.TotalWeight() != 10 {
		t.Fatalf("total = %g", s.TotalWeight())
	}
}

func TestSketchCollapsesDuplicates(t *testing.T) {
	s := New(8)
	for i := 0; i < 1000; i++ {
		s.Add(42, 1)
	}
	vals := s.Values()
	if len(vals) != 1 || vals[0] != 42 {
		t.Fatalf("values = %v", vals)
	}
	if s.TotalWeight() != 1000 {
		t.Fatalf("weight lost: %g", s.TotalWeight())
	}
}

func TestSketchWeightConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New(32)
	var total float64
	for i := 0; i < 10000; i++ {
		w := rng.Float64() + 0.01
		s.Add(rng.NormFloat64(), w)
		total += w
	}
	s.compress()
	var kept float64
	for _, e := range s.entries {
		kept += e.Weight
	}
	if diff := kept - total; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("weight not conserved: kept %g of %g", kept, total)
	}
}

func TestSketchQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 20000
	values := make([]float64, n)
	weights := make([]float64, n)
	s := New(256)
	for i := range values {
		values[i] = rng.NormFloat64() * 10
		weights[i] = rng.Float64() + 0.1
		s.Add(values[i], weights[i])
	}
	cuts := s.Quantiles(4) // quartile boundaries
	if len(cuts) == 0 {
		t.Fatal("no quantiles")
	}
	// Each returned cut must sit near its true quantile: compare the rank
	// of the cut against the even grid with tolerance ~ a few /maxSize.
	var total float64
	for _, w := range weights {
		total += w
	}
	for i, cut := range cuts {
		wantFrac := float64(i+1) / 4
		var rank float64
		for j := range values {
			if values[j] <= cut {
				rank += weights[j]
			}
		}
		gotFrac := rank / total
		if diff := gotFrac - wantFrac; diff > 0.05 || diff < -0.05 {
			t.Fatalf("cut %d at rank %.3f, want %.3f (±0.05)", i, gotFrac, wantFrac)
		}
	}
	// Cross-check one quartile against the exact computation.
	exact := exactWeightedQuantile(values, weights, 0.5)
	if d := cuts[1] - exact; d > 2 || d < -2 {
		t.Fatalf("median cut %.3f vs exact %.3f", cuts[1], exact)
	}
}

func TestSketchMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b, whole := New(128), New(128), New(128)
	for i := 0; i < 5000; i++ {
		v, w := rng.NormFloat64(), rng.Float64()+0.1
		whole.Add(v, w)
		if i%2 == 0 {
			a.Add(v, w)
		} else {
			b.Add(v, w)
		}
	}
	a.Merge(b)
	if d := a.TotalWeight() - whole.TotalWeight(); d > 1e-9 || d < -1e-9 {
		t.Fatalf("merged weight %g != %g", a.TotalWeight(), whole.TotalWeight())
	}
	ca, cw := a.Quantiles(4), whole.Quantiles(4)
	if len(ca) == 0 || len(cw) == 0 {
		t.Fatal("no quantiles after merge")
	}
	for i := range ca {
		if i < len(cw) {
			if d := ca[i] - cw[i]; d > 0.5 || d < -0.5 {
				t.Fatalf("merged quantile %d: %.3f vs %.3f", i, ca[i], cw[i])
			}
		}
	}
}

func TestSketchIgnoresNonPositiveWeight(t *testing.T) {
	s := New(8)
	s.Add(1, 0)
	s.Add(2, -5)
	if s.TotalWeight() != 0 || len(s.Values()) != 0 {
		t.Fatal("non-positive weights recorded")
	}
}

func TestQuantilesStrictlyIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := New(32)
	for i := 0; i < 5000; i++ {
		s.Add(float64(rng.Intn(5)), 1) // heavy duplication
	}
	cuts := s.Quantiles(16)
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not strictly increasing: %v", cuts)
		}
	}
	// The max value must never be a cut (it cannot separate anything).
	for _, c := range cuts {
		if c >= 4 {
			t.Fatalf("max value appeared as a cut: %v", cuts)
		}
	}
}

func TestQuantilesEdgeCases(t *testing.T) {
	s := New(8)
	if s.Quantiles(4) != nil {
		t.Fatal("empty sketch returned quantiles")
	}
	s.Add(1, 1)
	if cuts := s.Quantiles(1); cuts != nil {
		t.Fatalf("k=1 returned %v", cuts)
	}
}
