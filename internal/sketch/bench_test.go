package sketch

import (
	"math/rand"
	"testing"
)

// BenchmarkSketchAdd measures insertion throughput including periodic
// compression — the per-row cost of split proposal in the booster.
func BenchmarkSketchAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, 65536)
	weights := make([]float64, 65536)
	for i := range values {
		values[i] = rng.NormFloat64()
		weights[i] = rng.Float64() + 0.01
	}
	b.ReportAllocs()
	b.ResetTimer()
	s := New(256)
	for i := 0; i < b.N; i++ {
		s.Add(values[i&65535], weights[i&65535])
	}
}

// BenchmarkSketchQuantiles measures proposal extraction.
func BenchmarkSketchQuantiles(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := New(256)
	for i := 0; i < 100000; i++ {
		s.Add(rng.NormFloat64(), rng.Float64()+0.01)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cuts := s.Quantiles(32); len(cuts) == 0 {
			b.Fatal("no cuts")
		}
	}
}
