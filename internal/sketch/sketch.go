// Package sketch implements a mergeable weighted quantile summary, the
// substrate XGBoost's approximate split finding is built on (Chen &
// Guestrin 2016, §3.2): candidate split points are proposed at even
// hessian-weight quantiles of each feature. The summary keeps at most
// maxSize entries; each compression introduces at most W/maxSize rank error
// for total weight W, which matches the ε = 1/maxSize sketch contract
// closely enough for split proposal.
package sketch

import (
	"slices"
)

// Entry is one summary point: a value carrying the collapsed weight of the
// observations it represents.
type Entry struct {
	Value  float64
	Weight float64
}

// cmpEntryValue orders entries by ascending value for the concrete-type
// sorts (no reflection) used by Merge and compress.
func cmpEntryValue(a, b Entry) int {
	if a.Value < b.Value {
		return -1
	}
	if a.Value > b.Value {
		return 1
	}
	return 0
}

// Sketch accumulates weighted observations and answers quantile queries.
// The zero value is unusable; call New.
type Sketch struct {
	maxSize int
	entries []Entry // sorted, deduplicated after compression
	buffer  []Entry // pending inserts
	total   float64
}

// New returns a sketch that retains at most maxSize summary entries
// (minimum 8).
func New(maxSize int) *Sketch {
	if maxSize < 8 {
		maxSize = 8
	}
	return &Sketch{maxSize: maxSize}
}

// Add records one weighted observation. Non-positive weights are ignored.
func (s *Sketch) Add(value, weight float64) {
	if weight <= 0 {
		return
	}
	s.buffer = append(s.buffer, Entry{value, weight})
	s.total += weight
	if len(s.buffer) >= 2*s.maxSize {
		s.compress()
	}
}

// AddBulk records one unit-weight observation per value in a single batch.
// It summarises the same data as calling Add(v, 1) per value, but sorts the
// raw float64s once with the specialized sort and folds them into the
// summary with one linear merge, instead of re-sorting entry structs on
// every buffered compression — the fast path for sketching a whole resident
// column during bin proposal. The batch compresses at different points than
// the streaming path, so the retained entries may differ (both satisfy the
// same rank-error contract, and both are deterministic in their input).
func (s *Sketch) AddBulk(values []float64) {
	if len(values) == 0 {
		return
	}
	sorted := append(make([]float64, 0, len(values)), values...)
	slices.Sort(sorted)
	s.compress() // fold any pending buffer so entries holds the full summary
	merged := make([]Entry, 0, len(s.entries)+len(sorted))
	i := 0
	for j := 0; j < len(sorted); {
		v := sorted[j]
		var w float64
		for j < len(sorted) && sorted[j] == v {
			w++
			j++
		}
		for i < len(s.entries) && s.entries[i].Value < v {
			merged = append(merged, s.entries[i])
			i++
		}
		if i < len(s.entries) && s.entries[i].Value == v {
			w += s.entries[i].Weight
			i++
		}
		merged = append(merged, Entry{v, w})
	}
	merged = append(merged, s.entries[i:]...)
	s.total += float64(len(values))
	if len(merged) <= s.maxSize {
		s.entries = merged
		return
	}
	s.prune(merged)
}

// Merge folds another sketch into this one. The other sketch is unchanged.
// Equal values are collapsed eagerly, so merging replicas of the same data
// leaves the distinct-value summary unchanged (with uniformly scaled
// weights) rather than duplicated.
func (s *Sketch) Merge(o *Sketch) {
	s.entries = append(s.entries, o.entries...)
	s.buffer = append(s.buffer, o.buffer...)
	s.total += o.total
	slices.SortFunc(s.entries, cmpEntryValue)
	merged := s.entries[:0]
	for _, e := range s.entries {
		if n := len(merged); n > 0 && merged[n-1].Value == e.Value {
			merged[n-1].Weight += e.Weight
		} else {
			merged = append(merged, e)
		}
	}
	s.entries = merged
	s.compress()
}

// TotalWeight returns the summed weight of all observations.
func (s *Sketch) TotalWeight() float64 { return s.total }

// compress folds the buffer into the summary and prunes to maxSize entries
// positioned at even cumulative-weight spacing.
func (s *Sketch) compress() {
	if len(s.buffer) == 0 && len(s.entries) <= s.maxSize {
		return
	}
	all := append(s.entries, s.buffer...)
	s.buffer = nil
	slices.SortFunc(all, cmpEntryValue)
	// Collapse equal values.
	merged := all[:0]
	for _, e := range all {
		if n := len(merged); n > 0 && merged[n-1].Value == e.Value {
			merged[n-1].Weight += e.Weight
		} else {
			merged = append(merged, e)
		}
	}
	if len(merged) <= s.maxSize {
		s.entries = append([]Entry(nil), merged...)
		return
	}
	s.prune(merged)
}

// prune reduces a sorted, value-deduplicated summary to maxSize entries —
// the extremes plus the entries nearest the even cumulative-weight grid —
// and installs it as the new summary.
func (s *Sketch) prune(merged []Entry) {
	pruned := make([]Entry, 0, s.maxSize)
	step := s.total / float64(s.maxSize-1)
	nextRank := step
	var cum float64
	pruned = append(pruned, merged[0])
	cum = merged[0].Weight
	pendingWeight := 0.0
	for _, e := range merged[1 : len(merged)-1] {
		cum += e.Weight
		pendingWeight += e.Weight
		if cum >= nextRank {
			pruned = append(pruned, Entry{e.Value, pendingWeight})
			pendingWeight = 0
			for cum >= nextRank {
				nextRank += step
			}
		}
	}
	last := merged[len(merged)-1]
	last.Weight += pendingWeight
	pruned = append(pruned, last)
	s.entries = pruned
}

// Quantiles returns up to k-1 interior cut points that partition the
// observed weight into k roughly equal parts — the split proposals for a
// k-bin discretisation. Duplicates are removed; fewer points are returned
// when the data has few distinct values.
func (s *Sketch) Quantiles(k int) []float64 {
	s.compress()
	if k < 2 || len(s.entries) == 0 || s.total <= 0 {
		return nil
	}
	cuts := make([]float64, 0, k-1)
	var cum float64
	target := s.total / float64(k)
	next := target
	for _, e := range s.entries[:len(s.entries)-1] { // last value can't be a cut
		cum += e.Weight
		if cum >= next {
			if len(cuts) == 0 || e.Value > cuts[len(cuts)-1] {
				cuts = append(cuts, e.Value)
			}
			for cum >= next {
				next += target
			}
		}
	}
	return cuts
}

// Entries returns a copy of the compressed summary entries in ascending
// value order — the wire representation a worker ships to the master during
// bin proposal.
func (s *Sketch) Entries() []Entry {
	s.compress()
	return append([]Entry(nil), s.entries...)
}

// FromEntries reconstructs a sketch from transported entries, the inverse of
// Entries. The entries are copied, sorted, and compressed under maxSize.
func FromEntries(maxSize int, entries []Entry) *Sketch {
	s := New(maxSize)
	s.entries = append(s.entries, entries...)
	slices.SortFunc(s.entries, cmpEntryValue)
	for _, e := range entries {
		s.total += e.Weight
	}
	s.compress()
	return s
}

// Values returns the current summary values in ascending order (testing and
// exhaustive split proposal for small data).
func (s *Sketch) Values() []float64 {
	s.compress()
	out := make([]float64, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.Value
	}
	return out
}
