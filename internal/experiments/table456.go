package experiments

import (
	"fmt"
	"time"

	"treeserver/internal/boost"
	"treeserver/internal/cluster"
	"treeserver/internal/planet"
	"treeserver/internal/synth"
)

// table4Datasets returns the MS_LTRC- and c14B-like datasets used once
// MLlib became too slow on the bigger ones.
func table4Datasets(s Scale) []synth.PaperSpec {
	var out []synth.PaperSpec
	for _, ps := range synth.PaperSpecs(s.BaseRows) {
		switch ps.Spec.Name {
		case "ms_ltrc", "c14b":
			out = append(out, ps)
		}
	}
	if s.Quick {
		out = out[:1]
	}
	return out
}

// TableIV reproduces Tables IV(a)/(b): running time vs number of trees for
// TreeServer and MLlib. Paper shape: both grow linearly with trees (CPUs
// saturated), TreeServer several times faster throughout; accuracy flat
// for bagging.
func TableIV(s Scale) *Result {
	s = s.withDefaults()
	// Paper: 500/1000/1500/2000 trees; scaled by 10x for laptop runs.
	counts := []int{50, 100, 150, 200}
	if s.Quick {
		counts = []int{10, 20}
	}
	r := &Result{
		ID: "Table IV(a,b)", Title: "running time vs number of trees (random forest)",
		Header: Row{"dataset", "#trees", "TS time(s)", "TS acc", "MLlib time(s)", "MLlib acc"},
	}
	for _, ps := range table4Datasets(s) {
		train, test := generate(ps)
		for _, n := range counts {
			specs := rfSpecs(train, n, 17)
			tsTime, tsAcc := runTreeServer(s, train, test, specs)
			mlTime, mlAcc := runMLlib(s, train, test, specs, true)
			r.Rows = append(r.Rows, Row{
				ps.Spec.Name, fmt.Sprint(n),
				fmtSecs(tsTime), tsAcc, fmtSecs(mlTime), mlAcc,
			})
		}
	}
	r.Notes = append(r.Notes, "tree counts are the paper's 500..2000 scaled by 10x")
	return r
}

// TableIVc reproduces Table IV(c): XGBoost accuracy keeps improving with
// more trees (unlike bagging), at steeply growing cost.
func TableIVc(s Scale) *Result {
	s = s.withDefaults()
	counts := []int{10, 20, 40, 80, 100}
	if s.Quick {
		counts = []int{5, 20}
	}
	r := &Result{
		ID: "Table IV(c)", Title: "XGBoost-style boosting: trees vs time and accuracy",
		Header: Row{"dataset", "#trees", "time(s)", "acc"},
	}
	for _, ps := range table4Datasets(s) {
		train, test := generate(ps)
		for _, n := range counts {
			rounds := boostRounds(train, n)
			var acc string
			elapsed := timeIt(func() {
				m, err := boost.Train(train, boost.Config{Rounds: rounds, MaxDepth: 6})
				if err != nil {
					acc = "ERR:" + err.Error()
					return
				}
				acc = fmt.Sprintf("%.2f%%", m.Accuracy(test)*100)
			})
			r.Rows = append(r.Rows, Row{ps.Spec.Name, fmt.Sprint(n), fmtSecs(elapsed), acc})
		}
	}
	return r
}

// TableV reproduces Tables V(a)–(d): vertical scalability — compers per
// machine from 1 to 10. Paper shape: both systems speed up with threads,
// TreeServer stays a few times faster; gains flatten near the core count.
func TableV(s Scale) *Result {
	s = s.withDefaults()
	threads := []int{1, 2, 4, 8, 10}
	trees := 20
	if s.Quick {
		threads = []int{1, 4}
		trees = 8
	}
	r := &Result{
		ID: "Table V", Title: fmt.Sprintf("vertical scalability (%d-tree forest; time s)", trees),
		Header: Row{"#compers"},
	}
	specs := s.datasets()
	if len(specs) > 2 {
		specs = specs[:2] // the paper uses the first two datasets
	}
	for _, ps := range specs {
		r.Header = append(r.Header, "TS "+ps.Spec.Name, "MLlib "+ps.Spec.Name)
	}
	for _, th := range threads {
		row := Row{fmt.Sprint(th)}
		for _, ps := range specs {
			train, test := generate(ps)
			sc := s
			sc.Compers = th
			tsTime, _ := runTreeServer(sc, train, test, rfSpecs(train, trees, 19))
			mlCfg := s.mllibConfig(true)
			mlCfg.Parallelism = th * s.Workers
			mlTime := timeIt(func() {
				tr := &planet.Trainer{Table: train, Cfg: mlCfg}
				if _, err := tr.Train(rfSpecs(train, trees, 19)); err != nil {
					panic(err)
				}
			})
			row = append(row, fmtSecs(tsTime), fmtSecs(mlTime))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// TableVI reproduces Table VI: horizontal scalability — machines from 4 to
// the full cluster. Paper shape: time drops with machines while CPU% stays
// high and aggregate send rate grows toward the link limit.
func TableVI(s Scale) *Result {
	s = s.withDefaults()
	machines := []int{2, 4, 6, 8}
	trees := 20
	if s.Quick {
		machines = []int{2, 4}
		trees = 8
	}
	r := &Result{
		ID: "Table VI", Title: fmt.Sprintf("horizontal scalability (%d-tree forest)", trees),
		Header: Row{"dataset", "#machines", "time(s)", "CPU%", "send Mbps"},
	}
	specs := s.datasets()
	if len(specs) > 2 {
		specs = specs[:2]
	}
	for _, ps := range specs {
		train, test := generate(ps)
		for _, m := range machines {
			c := mustCluster(train, cluster.Config{
				Workers: m, Compers: s.Compers, Policy: policyFor(train.NumRows()),
			})
			start := time.Now()
			if _, err := c.Train(rfSpecs(train, trees, 23)); err != nil {
				c.Close()
				panic(err)
			}
			met := c.MetricsSince(start)
			c.Close()
			_ = test
			r.Rows = append(r.Rows, Row{
				ps.Spec.Name, fmt.Sprint(m), fmt.Sprintf("%.3f", met.WallSeconds),
				fmt.Sprintf("%.0f%%", met.CPUUtilisation), fmt.Sprintf("%.1f", met.SendMbps),
			})
		}
	}
	r.Notes = append(r.Notes,
		"CPU% = average busy compers per machine x100 (paper convention); links unthrottled, so Mbps shows demand rather than a 1GigE ceiling")
	return r
}
