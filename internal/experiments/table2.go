package experiments

import (
	"fmt"
	"time"

	"treeserver/internal/boost"
	"treeserver/internal/cluster"
	"treeserver/internal/dataset"
	"treeserver/internal/forest"
	"treeserver/internal/planet"
)

// runTreeServer trains the specs on a fresh cluster and returns wall time
// plus the test score cell.
func runTreeServer(s Scale, train, test *dataset.Table, specs []cluster.TreeSpec) (time.Duration, string) {
	c := s.treeServer(train)
	defer c.Close()
	var cell string
	elapsed := timeIt(func() {
		trees, err := c.Train(specs)
		if err != nil {
			cell = "ERR:" + err.Error()
			return
		}
		cell = accuracyOf(trees, test)
	})
	return elapsed, cell
}

// runMLlib trains the specs on the PLANET/MLlib simulation.
func runMLlib(s Scale, train, test *dataset.Table, specs []cluster.TreeSpec, parallel bool) (time.Duration, string) {
	tr := &planet.Trainer{Table: train, Cfg: s.mllibConfig(parallel)}
	var cell string
	elapsed := timeIt(func() {
		trees, err := tr.Train(specs)
		if err != nil {
			cell = "ERR:" + err.Error()
			return
		}
		// MLlib cannot see missing values at prediction either.
		evalTbl := test
		for _, c := range test.Cols {
			if c.MissingCount() > 0 {
				evalTbl = dataset.FillMissingWithMean(test)
				break
			}
		}
		cell = accuracyOf(trees, evalTbl)
	})
	return elapsed, cell
}

// TableIIa reproduces Table II(a): one decision tree per dataset,
// TreeServer vs MLlib (parallel) vs MLlib (single thread).
// Paper shape: TreeServer consistently several times faster; accuracy equal
// or slightly higher (exact vs 32-bin approximate splits).
func TableIIa(s Scale) *Result {
	s = s.withDefaults()
	r := &Result{
		ID: "Table II(a)", Title: "one decision tree: TreeServer vs MLlib (accuracy = RMSE for allstate)",
		Header: Row{"dataset", "TS time(s)", "TS acc", "MLlib-par time(s)", "MLlib-par acc", "MLlib-1t time(s)", "MLlib-1t acc"},
	}
	for _, ps := range s.datasets() {
		train, test := generate(ps)
		tsTime, tsAcc := runTreeServer(s, train, test, singleTreeSpec())
		parTime, parAcc := runMLlib(s, train, test, singleTreeSpec(), true)
		serTime, serAcc := runMLlib(s, train, test, singleTreeSpec(), false)
		r.Rows = append(r.Rows, Row{
			ps.Spec.Name, fmtSecs(tsTime), tsAcc,
			fmtSecs(parTime), parAcc, fmtSecs(serTime), serAcc,
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("synthetic datasets scaled to base %d rows; MLlib = PLANET simulation (maxBins=32, stage overhead + shuffle modelled)", s.BaseRows))
	return r
}

// TableIIb reproduces Table II(b): a 20-tree random forest with |C| = √|A|.
func TableIIb(s Scale) *Result {
	s = s.withDefaults()
	trees := 20
	if s.Quick {
		trees = 8
	}
	r := &Result{
		ID: "Table II(b)", Title: fmt.Sprintf("random forest (%d trees, |C|=sqrt|A|): TreeServer vs MLlib", trees),
		Header: Row{"dataset", "TS time(s)", "TS acc", "MLlib-par time(s)", "MLlib-par acc", "MLlib-1t time(s)", "MLlib-1t acc"},
	}
	for _, ps := range s.datasets() {
		train, test := generate(ps)
		specs := rfSpecs(train, trees, 7)
		tsTime, tsAcc := runTreeServer(s, train, test, specs)
		parTime, parAcc := runMLlib(s, train, test, specs, true)
		serTime, serAcc := runMLlib(s, train, test, specs, false)
		r.Rows = append(r.Rows, Row{
			ps.Spec.Name, fmtSecs(tsTime), tsAcc,
			fmtSecs(parTime), parAcc, fmtSecs(serTime), serAcc,
		})
	}
	return r
}

// TableIIc reproduces Table II(c): TreeServer 100-tree random forest
// (bagging, trees independent) vs XGBoost-style boosting with 100 trees
// (strictly sequential rounds). Paper shape: boosting sometimes a bit more
// accurate, but far slower because rounds cannot run concurrently.
func TableIIc(s Scale) *Result {
	s = s.withDefaults()
	trees := 100
	if s.Quick {
		trees = 24
	}
	r := &Result{
		ID: "Table II(c)", Title: fmt.Sprintf("%d trees: TreeServer bagging vs XGBoost-style boosting", trees),
		Header: Row{"dataset", "TS time(s)", "TS acc", "XGB time(s)", "XGB acc"},
	}
	for _, ps := range s.datasets() {
		train, test := generate(ps)
		tsTime, tsAcc := runTreeServer(s, train, test, rfSpecs(train, trees, 11))

		rounds := boostRounds(train, trees)
		var xgbAcc string
		xgbTime := timeIt(func() {
			m, err := boost.Train(train, boost.Config{Rounds: rounds, MaxDepth: 6})
			if err != nil {
				xgbAcc = "ERR:" + err.Error()
				return
			}
			if train.Task() == dataset.Regression {
				xgbAcc = fmt.Sprintf("%.3f", m.RMSE(test))
			} else {
				xgbAcc = fmt.Sprintf("%.2f%%", m.Accuracy(test)*100)
			}
		})
		r.Rows = append(r.Rows, Row{ps.Spec.Name, fmtSecs(tsTime), tsAcc, fmtSecs(xgbTime), xgbAcc})
	}
	r.Notes = append(r.Notes, "boosting rounds chosen so total tree count matches (softmax trains one tree per class per round)")
	return r
}

// boostRounds converts a target total tree count into boosting rounds,
// accounting for softmax training one tree per class per round.
func boostRounds(tbl *dataset.Table, trees int) int {
	perRound := 1
	if tbl.Task() == dataset.Classification && tbl.NumClasses() > 2 {
		perRound = tbl.NumClasses()
	}
	rounds := trees / perRound
	if rounds < 1 {
		rounds = 1
	}
	return rounds
}

// Fairness reproduces the "Fairness of Implementation" paragraph:
// single-threaded single-tree TreeServer (the serial local trainer) vs
// single-threaded MLlib. Paper shape: comparable times — the speedups in
// Table II come from the system design, not the implementation language.
func Fairness(s Scale) *Result {
	s = s.withDefaults()
	r := &Result{
		ID: "Fairness", Title: "single-thread single-tree: exact serial trainer vs MLlib single thread",
		Header: Row{"dataset", "serial-exact time(s)", "MLlib-1t time(s)"},
	}
	specs := s.datasets()
	for _, ps := range specs {
		train, test := generate(ps)
		local := &forest.Local{Table: train, Parallelism: 1}
		var serialTime time.Duration
		serialTime = timeIt(func() {
			if _, err := local.Train(singleTreeSpec()); err != nil {
				panic(err)
			}
		})
		mlTime, _ := runMLlib(s, train, test, singleTreeSpec(), false)
		r.Rows = append(r.Rows, Row{ps.Spec.Name, fmtSecs(serialTime), fmtSecs(mlTime)})
	}
	return r
}
