// Package experiments reproduces every table of the paper's evaluation
// (Section VIII, Tables II–VIII) plus the design ablations called out in
// DESIGN.md. Each experiment is a function returning a Result that renders
// like the paper's table; cmd/benchtab prints them and bench_test.go wraps
// them as testing.B benchmarks.
//
// Workloads are scaled-down synthetic equivalents of the paper's datasets
// (see internal/synth); absolute numbers therefore differ from the paper,
// but the comparisons — who wins, how the curves move — are the
// reproduction target. EXPERIMENTS.md records paper-vs-measured shape.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/forest"
	"treeserver/internal/metrics"
	"treeserver/internal/planet"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

// Row is one line of a rendered result table.
type Row []string

// Result is one reproduced table.
type Result struct {
	ID     string
	Title  string
	Header Row
	Rows   []Row
	Notes  []string
}

// Fprint renders the result with aligned columns.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	rows := append([]Row{r.Header}, r.Rows...)
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		cells := make([]string, len(row))
		for i, cell := range row {
			cells[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(cells, "  "), " "))
		if ri == 0 {
			total := len(widths)*2 - 2
			for _, wd := range widths {
				total += wd
			}
			fmt.Fprintln(w, strings.Repeat("-", total))
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Scale controls experiment sizes so the suite runs on a laptop. Zero
// values take defaults; Quick shrinks everything further for smoke runs.
type Scale struct {
	// BaseRows is the row count of the largest synthetic dataset
	// (loan_y2-like); others keep the paper's relative sizes. Default 20000.
	BaseRows int
	// Workers/Compers define the simulated cluster (paper: 15 × 10).
	Workers int
	Compers int
	// Quick restricts dataset lists and sweep points for fast smoke runs.
	Quick bool
}

// DefaultScale returns the standard laptop-scale configuration.
func DefaultScale() Scale {
	return Scale{BaseRows: 20000, Workers: 4, Compers: 4}
}

func (s Scale) withDefaults() Scale {
	if s.BaseRows <= 0 {
		s.BaseRows = 20000
	}
	if s.Workers <= 0 {
		s.Workers = 4
	}
	if s.Compers <= 0 {
		s.Compers = 4
	}
	return s
}

// policyFor scales the paper's τ_D / τ_dfs defaults down with the dataset
// so both task kinds occur at laptop row counts (the paper's thresholds
// assume millions of rows).
func policyFor(rows int) task.Policy {
	p := task.Policy{TauD: rows / 10, TauDFS: rows / 2, NPool: 200}
	if p.TauD < 64 {
		p.TauD = 64
	}
	if p.TauDFS <= p.TauD {
		p.TauDFS = 2 * p.TauD
	}
	return p
}

// datasets returns the synthetic Table-I datasets at this scale; Quick mode
// keeps three representative ones (regression + numeric + categorical).
func (s Scale) datasets() []synth.PaperSpec {
	all := synth.PaperSpecs(s.BaseRows)
	if !s.Quick {
		return all
	}
	var out []synth.PaperSpec
	for _, ps := range all {
		switch ps.Spec.Name {
		case "allstate", "higgs_boson", "poker":
			out = append(out, ps)
		}
	}
	return out
}

// genCache avoids regenerating identical datasets across experiments in
// one process.
var genCache = map[string][2]*dataset.Table{}

func generate(ps synth.PaperSpec) (train, test *dataset.Table) {
	key := fmt.Sprintf("%s/%d/%d", ps.Spec.Name, ps.Spec.Rows, ps.Spec.Seed)
	if got, ok := genCache[key]; ok {
		return got[0], got[1]
	}
	train, test = synth.Generate(ps.Spec, 0.2)
	genCache[key] = [2]*dataset.Table{train, test}
	return train, test
}

// mllibConfig is the simulated Spark MLlib deployment matched to the scale.
func (s Scale) mllibConfig(parallel bool) planet.Config {
	cfg := planet.Config{
		Partitions:    s.Workers * 2,
		MaxBins:       32,
		StageOverhead: 4 * time.Millisecond,
		ShuffleBps:    200e6,
	}
	if parallel {
		cfg.Parallelism = s.Workers * s.Compers
	} else {
		cfg.Parallelism = 1
	}
	return cfg
}

// treeServer spins an in-process cluster for a table.
func (s Scale) treeServer(tbl *dataset.Table) *cluster.Cluster {
	return mustCluster(tbl, cluster.Config{
		Workers: s.Workers, Compers: s.Compers,
		Policy: policyFor(tbl.NumRows()),
	})
}

// mustCluster builds a cluster from a programmatic Config. Experiment sweeps
// construct configurations from validated scales, so an error here is a bug.
func mustCluster(tbl *dataset.Table, cfg cluster.Config) *cluster.Cluster {
	c, err := cluster.NewInProcess(tbl, cluster.WithConfig(cfg))
	if err != nil {
		panic(err)
	}
	return c
}

// evaluate scores trees on the test table: accuracy (classification) or
// RMSE (regression, flagged by the returned bool).
func evaluate(trees []*core.Tree, test *dataset.Table) (score float64, isRMSE bool) {
	f := &forest.Forest{Trees: trees, Task: test.Task(), NumClasses: test.NumClasses()}
	if test.Task() == dataset.Regression {
		return f.RMSE(test), true
	}
	return f.Accuracy(test), false
}

func fmtScore(score float64, isRMSE bool) string {
	if isRMSE {
		return fmt.Sprintf("%.3f", score)
	}
	return fmt.Sprintf("%.2f%%", score*100)
}

func fmtSecs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// timeIt runs f and returns its wall-clock duration.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// peakHeapDuring samples heap usage while f runs and returns the peak
// observed HeapAlloc in MB — the Table-III memory column.
func peakHeapDuring(f func()) (time.Duration, float64) {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	peak := base.HeapAlloc
	done := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peak {
					peak = m.HeapAlloc
				}
			}
		}
	}()
	elapsed := timeIt(f)
	close(done)
	<-sampled
	return elapsed, float64(peak) / (1 << 20)
}

// rfSpecs builds the paper's random-forest configuration: n trees, each on
// a bootstrap bag with |C| = √|A| columns.
func rfSpecs(tbl *dataset.Table, trees int, seed int64) []cluster.TreeSpec {
	return forest.Specs(cluster.SchemaOf(tbl), forest.Config{
		Trees: trees, Params: core.Defaults(), ColFrac: 0, Bootstrap: true, Seed: seed,
	})
}

// singleTreeSpec is one decision tree over all columns, the Table-II(a)
// workload.
func singleTreeSpec() []cluster.TreeSpec {
	return []cluster.TreeSpec{{Params: core.Defaults()}}
}

// accuracyOf evaluates a tree list against a test table as a formatted cell.
func accuracyOf(trees []*core.Tree, test *dataset.Table) string {
	score, isRMSE := evaluate(trees, test)
	return fmtScore(score, isRMSE)
}

// All runs every table experiment at the given scale, in paper order.
func All(s Scale) []*Result {
	return []*Result{
		TableIIa(s), TableIIb(s), TableIIc(s),
		TableIIINPool(s), TableIIITauDFS(s), TableIIITauD(s),
		TableIV(s), TableIVc(s),
		TableV(s), TableVI(s),
		TableVII(s),
		TableVIIIDmax(s), TableVIIICols(s),
		Fairness(s),
	}
}

// Ablations runs the DESIGN.md ablation benches.
func Ablations(s Scale) []*Result {
	return []*Result{
		AblationMasterRelay(s), AblationSchedPolicy(s),
		AblationColumnGroups(s), AblationLoadBal(s),
	}
}

// ByID returns the experiment function registered under the id used by
// cmd/benchtab's -table flag.
func ByID(id string) (func(Scale) *Result, bool) {
	m := map[string]func(Scale) *Result{
		"2a": TableIIa, "2b": TableIIb, "2c": TableIIc,
		"3npool": TableIIINPool, "3tdfs": TableIIITauDFS, "3td": TableIIITauD,
		"4": TableIV, "4c": TableIVc,
		"5": TableV, "6": TableVI, "7": TableVII,
		"8dmax": TableVIIIDmax, "8cols": TableVIIICols,
		"fair":         Fairness,
		"ab-relay":     AblationMasterRelay,
		"ab-sched":     AblationSchedPolicy,
		"ab-colgroups": AblationColumnGroups,
		"ab-loadbal":   AblationLoadBal,
		"ext-gbt":      ExtensionGBT,
	}
	f, ok := m[id]
	return f, ok
}

// IDs lists the registered experiment ids in canonical order.
func IDs() []string {
	return []string{"2a", "2b", "2c", "3npool", "3tdfs", "3td", "4", "4c",
		"5", "6", "7", "8dmax", "8cols", "fair",
		"ab-relay", "ab-sched", "ab-colgroups", "ab-loadbal", "ext-gbt"}
}

var _ = metrics.ArgMax // referenced by sibling files
