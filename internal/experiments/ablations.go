package experiments

import (
	"fmt"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/dfs"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

// AblationMasterRelay quantifies the Section-V design: master outbound
// bytes with delegate-worker row serving vs the naive master-relayed I_x.
// Expected: relayed rows inflate master traffic by an order of magnitude on
// deep trees.
func AblationMasterRelay(s Scale) *Result {
	s = s.withDefaults()
	ps, _ := synth.PaperSpecByName("higgs_boson", s.BaseRows)
	train, _ := generate(ps)
	r := &Result{
		ID: "Ablation: row relaying", Title: "Section V — master outbound traffic with vs without delegate workers",
		Header: Row{"mode", "time(s)", "master sent MB", "workers sent MB"},
	}
	for _, relay := range []bool{false, true} {
		abl := cluster.AblationNone
		if relay {
			abl = cluster.AblationRelayRows
		}
		c := mustCluster(train, cluster.Config{
			Workers: s.Workers, Compers: s.Compers,
			Policy: policyFor(train.NumRows()), Ablation: abl,
		})
		start := time.Now()
		if _, err := c.Train(singleTreeSpec()); err != nil {
			c.Close()
			panic(err)
		}
		met := c.MetricsSince(start)
		c.Close()
		mode := "delegate workers (TreeServer)"
		if relay {
			mode = "master relays I_x (naive)"
		}
		r.Rows = append(r.Rows, Row{
			mode, fmt.Sprintf("%.3f", met.WallSeconds),
			fmt.Sprintf("%.2f", float64(met.MasterSentBytes)/1e6),
			fmt.Sprintf("%.2f", float64(met.WorkerSentBytes)/1e6),
		})
	}
	return r
}

// AblationSchedPolicy compares the hybrid BFS/DFS deque policy against pure
// breadth-first (τ_dfs = 0: everything appended) and pure depth-first
// (τ_dfs = ∞: everything at the head) on a multi-tree job.
func AblationSchedPolicy(s Scale) *Result {
	s = s.withDefaults()
	ps, _ := synth.PaperSpecByName("higgs_boson", s.BaseRows)
	train, _ := generate(ps)
	trees := 20
	if s.Quick {
		trees = 8
	}
	base := policyFor(train.NumRows())
	modes := []struct {
		name string
		pol  task.Policy
	}{
		{"hybrid (paper)", base},
		{"pure BFS", task.Policy{TauD: base.TauD, TauDFS: 0, NPool: base.NPool}},
		{"pure DFS", task.Policy{TauD: base.TauD, TauDFS: 1 << 30, NPool: base.NPool}},
	}
	r := &Result{
		ID: "Ablation: scheduling", Title: fmt.Sprintf("hybrid vs pure BFS/DFS deque policy (%d-tree forest)", trees),
		Header: Row{"policy", "time(s)", "CPU%"},
	}
	for _, m := range modes {
		c := mustCluster(train, cluster.Config{
			Workers: s.Workers, Compers: s.Compers, Policy: m.pol,
		})
		start := time.Now()
		if _, err := c.Train(rfSpecs(train, trees, 37)); err != nil {
			c.Close()
			panic(err)
		}
		met := c.MetricsSince(start)
		c.Close()
		r.Rows = append(r.Rows, Row{m.name, fmt.Sprintf("%.3f", met.WallSeconds), fmt.Sprintf("%.0f%%", met.CPUUtilisation)})
	}
	return r
}

// AblationColumnGroups quantifies the Section-VII storage claim: loading
// all columns from the DFS with one file per column vs grouped columns,
// under HDFS-like connection latency.
func AblationColumnGroups(s Scale) *Result {
	s = s.withDefaults()
	ps, _ := synth.PaperSpecByName("c14b", s.BaseRows) // 700 columns
	train, _ := generate(ps)
	r := &Result{
		ID: "Ablation: column grouping", Title: "Section VII — DFS load cost, one file per column vs column groups",
		Header: Row{"layout", "files opened", "simulated IO", "bytes MB"},
	}
	for _, grouping := range []struct {
		name string
		cols int
	}{{"1 column/file", 1}, {"50 columns/file", 50}} {
		store := dfs.NewStore(dfs.Config{ConnectLatency: 2 * time.Millisecond, ThroughputBps: 500e6})
		layout, err := dfs.PutTable(store, "tbl", train, grouping.cols, train.NumRows()/4+1)
		if err != nil {
			panic(err)
		}
		store.ResetStats()
		if _, err := dfs.LoadColumns(store, "tbl", layout, train.FeatureIndexes()); err != nil {
			panic(err)
		}
		st := store.Stats()
		r.Rows = append(r.Rows, Row{
			grouping.name, fmt.Sprint(st.Opens), st.SimulatedTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", float64(st.BytesRead)/1e6),
		})
	}
	return r
}

// AblationLoadBal compares the Section-VI cost-model assignment against
// round-robin: wall time and the busy-time spread across workers.
func AblationLoadBal(s Scale) *Result {
	s = s.withDefaults()
	ps, _ := synth.PaperSpecByName("kdd99", s.BaseRows)
	train, _ := generate(ps)
	trees := 20
	if s.Quick {
		trees = 8
	}
	r := &Result{
		ID: "Ablation: load balancing", Title: fmt.Sprintf("M_work cost model vs round-robin assignment (%d-tree forest)", trees),
		Header: Row{"assigner", "time(s)", "busiest worker(s)", "idlest worker(s)"},
	}
	for _, rr := range []bool{false, true} {
		mode := cluster.AblationNone
		if rr {
			mode = cluster.AblationRoundRobin
		}
		c := mustCluster(train, cluster.Config{
			Workers: s.Workers, Compers: s.Compers,
			Policy: policyFor(train.NumRows()), Ablation: mode,
		})
		start := time.Now()
		if _, err := c.Train(rfSpecs(train, trees, 41)); err != nil {
			c.Close()
			panic(err)
		}
		met := c.MetricsSince(start)
		c.Close()
		minB, maxB := met.WorkerBusy[0], met.WorkerBusy[0]
		for _, b := range met.WorkerBusy[1:] {
			if b < minB {
				minB = b
			}
			if b > maxB {
				maxB = b
			}
		}
		name := "M_work cost model (paper)"
		if rr {
			name = "round-robin"
		}
		r.Rows = append(r.Rows, Row{name, fmt.Sprintf("%.3f", met.WallSeconds),
			fmt.Sprintf("%.3f", maxB), fmt.Sprintf("%.3f", minB)})
	}
	return r
}
