package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tinyScale keeps smoke tests fast.
func tinyScale() Scale {
	return Scale{BaseRows: 6000, Workers: 3, Compers: 2, Quick: true}
}

func checkResult(t *testing.T, r *Result, minRows int) {
	t.Helper()
	if r.ID == "" || r.Title == "" {
		t.Fatal("result missing id/title")
	}
	if len(r.Rows) < minRows {
		t.Fatalf("%s: %d rows, want >= %d", r.ID, len(r.Rows), minRows)
	}
	for i, row := range r.Rows {
		if len(row) != len(r.Header) {
			t.Fatalf("%s row %d has %d cells, header has %d", r.ID, i, len(row), len(r.Header))
		}
		for _, cell := range row {
			if strings.HasPrefix(cell, "ERR:") {
				t.Fatalf("%s row %d: %s", r.ID, i, cell)
			}
		}
	}
	var sb strings.Builder
	r.Fprint(&sb)
	if !strings.Contains(sb.String(), r.ID) {
		t.Fatalf("%s: render missing id", r.ID)
	}
}

// parseSecs reads a seconds cell.
func parseSecs(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("bad seconds cell %q: %v", cell, err)
	}
	return v
}

func TestTableIIaShape(t *testing.T) {
	r := TableIIa(tinyScale())
	checkResult(t, r, 3)
	// The headline claim: TreeServer no slower than parallel MLlib on any
	// dataset at this scale (the paper reports consistent wins).
	wins := 0
	for _, row := range r.Rows {
		ts, ml := parseSecs(t, row[1]), parseSecs(t, row[3])
		if ts < ml {
			wins++
		}
	}
	if wins < 2 {
		t.Fatalf("TreeServer won only %d/%d datasets against MLlib", wins, len(r.Rows))
	}
}

func TestTableIIbShape(t *testing.T) {
	checkResult(t, TableIIb(tinyScale()), 3)
}

func TestTableIIcShape(t *testing.T) {
	r := TableIIc(tinyScale())
	checkResult(t, r, 3)
	// Boosting is sequential: TreeServer must be faster on most datasets.
	wins := 0
	for _, row := range r.Rows {
		if parseSecs(t, row[1]) < parseSecs(t, row[3]) {
			wins++
		}
	}
	if wins < 2 {
		t.Fatalf("TreeServer beat boosting on only %d/%d datasets", wins, len(r.Rows))
	}
}

func TestTableIIINPoolShape(t *testing.T) {
	// The paper's 3-6x n_pool effect comes from hiding network latency; in
	// process the latency is microseconds, so the measurable effect is a
	// modest improvement. Assert direction with tolerance at a scale where
	// a tree is non-trivial (see EXPERIMENTS.md for the discussion).
	r := TableIIINPool(Scale{BaseRows: 40000, Workers: 4, Compers: 4, Quick: true})
	checkResult(t, r, 2)
	first := parseSecs(t, r.Rows[0][1])
	last := parseSecs(t, r.Rows[len(r.Rows)-1][1])
	if last > first*1.15 {
		t.Fatalf("larger n_pool slowed the job down: npool=1 %.3fs vs max pool %.3fs", first, last)
	}
}

func TestTableIIITauSweepsRun(t *testing.T) {
	checkResult(t, TableIIITauDFS(tinyScale()), 2)
	checkResult(t, TableIIITauD(tinyScale()), 2)
}

func TestTableIVShape(t *testing.T) {
	r := TableIV(tinyScale())
	checkResult(t, r, 2)
	// Time grows with tree count for TreeServer.
	if parseSecs(t, r.Rows[0][2]) >= parseSecs(t, r.Rows[1][2]) {
		t.Fatalf("time did not grow with trees: %s vs %s", r.Rows[0][2], r.Rows[1][2])
	}
}

func TestTableIVcShape(t *testing.T) {
	checkResult(t, TableIVc(tinyScale()), 2)
}

func TestTableVShape(t *testing.T) {
	r := TableV(tinyScale())
	checkResult(t, r, 2)
	// More compers must not slow TreeServer down substantially: allow
	// scheduling noise but expect the 4-comper run within 1.5x of 1-comper.
	if t1, t4 := parseSecs(t, r.Rows[0][1]), parseSecs(t, r.Rows[1][1]); t4 > 1.5*t1 {
		t.Fatalf("vertical scaling regressed: 1 comper %.3fs, 4 compers %.3fs", t1, t4)
	}
}

func TestTableVIShape(t *testing.T) {
	checkResult(t, TableVI(tinyScale()), 2)
}

func TestTableVIIShape(t *testing.T) {
	r := TableVII(tinyScale())
	checkResult(t, r, 5)
	// Step names mirror the paper's Table VII.
	seen := map[string]bool{}
	for _, row := range r.Rows {
		seen[row[0]] = true
	}
	for _, step := range []string{"slide", "win5train", "win5extract", "CF0train", "CF0extract"} {
		if !seen[step] {
			t.Fatalf("missing step %q", step)
		}
	}
}

func TestTableVIIIShapes(t *testing.T) {
	// The dmax direction (accuracy keeps improving with depth) needs enough
	// rows per leaf; the tiny scale floors at 2000 rows and inverts, so
	// this one experiment runs at a higgs-like size of ~12k rows.
	r := TableVIIIDmax(Scale{BaseRows: 60000, Workers: 3, Compers: 4, Quick: true})
	checkResult(t, r, 3)
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err != nil {
			t.Fatalf("bad accuracy cell %q", cell)
		}
		return v
	}
	if parse(r.Rows[0][2]) >= parse(r.Rows[len(r.Rows)-1][2]) {
		t.Fatalf("1-tree accuracy did not improve with dmax: %s -> %s",
			r.Rows[0][2], r.Rows[len(r.Rows)-1][2])
	}
	checkResult(t, TableVIIICols(tinyScale()), 2)
}

func TestFairnessShape(t *testing.T) {
	checkResult(t, Fairness(tinyScale()), 3)
}

func TestAblationsRun(t *testing.T) {
	relay := AblationMasterRelay(tinyScale())
	checkResult(t, relay, 2)
	// The relay row must show strictly more master traffic.
	lean, _ := strconv.ParseFloat(relay.Rows[0][2], 64)
	relayed, _ := strconv.ParseFloat(relay.Rows[1][2], 64)
	if relayed <= lean {
		t.Fatalf("relay mode master traffic %.2fMB not above delegate mode %.2fMB", relayed, lean)
	}
	checkResult(t, AblationSchedPolicy(tinyScale()), 3)

	groups := AblationColumnGroups(tinyScale())
	checkResult(t, groups, 2)
	opens1, _ := strconv.Atoi(groups.Rows[0][1])
	opensG, _ := strconv.Atoi(groups.Rows[1][1])
	if opensG >= opens1 {
		t.Fatalf("grouping did not reduce opens: %d vs %d", opensG, opens1)
	}
	checkResult(t, AblationLoadBal(tinyScale()), 2)
}

func TestByIDAndIDsAgree(t *testing.T) {
	for _, id := range IDs() {
		if _, ok := ByID(id); !ok {
			t.Fatalf("id %q not resolvable", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id resolved")
	}
}
