package experiments

import (
	"fmt"

	"treeserver/internal/cluster"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

// table3Datasets returns the three datasets the paper uses in Table III:
// Allstate, Higgs_boson and KDD99 (their synthetic equivalents).
func table3Datasets(s Scale) []synth.PaperSpec {
	var out []synth.PaperSpec
	for _, ps := range synth.PaperSpecs(s.BaseRows) {
		switch ps.Spec.Name {
		case "allstate", "higgs_boson", "kdd99":
			out = append(out, ps)
		}
	}
	if s.Quick {
		out = out[:1]
	}
	return out
}

// trainWithPolicy runs a 20-tree forest job under an explicit scheduling
// policy and reports wall time + peak heap.
func trainWithPolicy(s Scale, ps synth.PaperSpec, pol task.Policy, trees int) (secs, memMB float64) {
	train, _ := generate(ps)
	c := mustCluster(train, cluster.Config{
		Workers: s.Workers, Compers: s.Compers, Policy: pol,
	})
	defer c.Close()
	specs := rfSpecs(train, trees, 13)
	elapsed, peak := peakHeapDuring(func() {
		if _, err := c.Train(specs); err != nil {
			panic(err)
		}
	})
	return elapsed.Seconds(), peak
}

// TableIIINPool reproduces Tables III(a)–(c): the effect of n_pool on a
// 20-tree random forest. Paper shape: time drops steeply as n_pool grows
// from 1 (strictly sequential trees) and flattens once CPUs saturate;
// memory grows only mildly.
func TableIIINPool(s Scale) *Result {
	s = s.withDefaults()
	trees := 20
	npools := []int{1, 5, 10, 20}
	if s.Quick {
		trees, npools = 8, []int{1, 8}
	}
	r := &Result{
		ID: "Table III(a-c)", Title: fmt.Sprintf("effect of n_pool (%d-tree forest; time s / peak heap MB)", trees),
		Header: Row{"n_pool"},
	}
	specs := table3Datasets(s)
	for _, ps := range specs {
		r.Header = append(r.Header, ps.Spec.Name+" time", ps.Spec.Name+" mem")
	}
	for _, np := range npools {
		row := Row{fmt.Sprint(np)}
		for _, ps := range specs {
			pol := policyFor(ps.Spec.Rows)
			pol.NPool = np
			secs, mem := trainWithPolicy(s, ps, pol, trees)
			row = append(row, fmt.Sprintf("%.3f", secs), fmt.Sprintf("%.1f", mem))
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes, "peak heap sampled process-wide; the paper reports per-machine peaks")
	return r
}

// TableIIITauDFS reproduces Table III(d): sweeping τ_dfs with τ_D fixed at
// its default. Paper shape: a shallow U — too small starves initial
// parallelism, too large delays compute-bound subtree tasks.
func TableIIITauDFS(s Scale) *Result {
	s = s.withDefaults()
	trees := 20
	// The paper sweeps 20k..150k at 13M rows; scale the same fractions.
	fracs := []struct {
		label string
		num   int
		den   int
	}{{"rows/32", 1, 32}, {"rows/8", 1, 8}, {"rows/2", 1, 2}, {"rows*3/4", 3, 4}, {"rows", 1, 1}}
	if s.Quick {
		trees = 8
		fracs = fracs[1:4]
	}
	r := &Result{
		ID: "Table III(d)", Title: fmt.Sprintf("effect of tau_dfs (%d-tree forest, tau_D = rows/10; time s)", trees),
		Header: Row{"tau_dfs"},
	}
	specs := table3Datasets(s)
	for _, ps := range specs {
		r.Header = append(r.Header, ps.Spec.Name)
	}
	for _, f := range fracs {
		row := Row{f.label}
		for _, ps := range specs {
			pol := policyFor(ps.Spec.Rows)
			pol.TauDFS = ps.Spec.Rows * f.num / f.den
			if pol.TauDFS <= pol.TauD {
				pol.TauDFS = pol.TauD + 1
			}
			secs, _ := trainWithPolicy(s, ps, pol, trees)
			row = append(row, fmt.Sprintf("%.3f", secs))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// TableIIITauD reproduces Table III(e): sweeping τ_D with τ_dfs fixed.
// Paper shape: small τ_D makes subtree tasks too tiny to saturate cores,
// large τ_D leaves too few tasks for balance; the middle wins.
func TableIIITauD(s Scale) *Result {
	s = s.withDefaults()
	trees := 20
	// The paper sweeps absolute τ_D = 2k..20k on multi-million-row data; at
	// laptop scale the equivalent fractional sweep starts at rows/24 — a
	// rows/64 point would make subtree tasks of ~75 rows, where the master's
	// per-task overhead dominates everything (the very effect the left edge
	// of the paper's U-curve shows, but far off-scale).
	fracs := []struct {
		label string
		num   int
		den   int
	}{{"rows/24", 1, 24}, {"rows/10", 1, 10}, {"rows/4", 1, 4}, {"rows/2", 1, 2}}
	if s.Quick {
		trees = 8
		fracs = fracs[:3]
	}
	r := &Result{
		ID: "Table III(e)", Title: fmt.Sprintf("effect of tau_D (%d-tree forest, tau_dfs = rows/2; time s)", trees),
		Header: Row{"tau_D"},
	}
	specs := table3Datasets(s)
	for _, ps := range specs {
		r.Header = append(r.Header, ps.Spec.Name)
	}
	for _, f := range fracs {
		row := Row{f.label}
		for _, ps := range specs {
			pol := policyFor(ps.Spec.Rows)
			pol.TauD = ps.Spec.Rows * f.num / f.den
			if pol.TauD < 16 {
				pol.TauD = 16
			}
			if pol.TauDFS <= pol.TauD {
				pol.TauDFS = pol.TauD * 2
			}
			secs, _ := trainWithPolicy(s, ps, pol, trees)
			row = append(row, fmt.Sprintf("%.3f", secs))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}
