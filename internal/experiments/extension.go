package experiments

import (
	"fmt"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/gbt"
	"treeserver/internal/synth"
)

// ExtensionGBT documents the repository's extension beyond the paper:
// gradient boosting driven through the TreeServer engine (sequential rounds,
// distributed exact trees within each round). It reports accuracy vs rounds
// — Table IV(c)'s shape — and compares wall time against the purely serial
// reference to show the within-round parallelism.
func ExtensionGBT(s Scale) *Result {
	s = s.withDefaults()
	rounds := []int{5, 15, 30}
	if s.Quick {
		rounds = []int{3, 10}
	}
	ps, _ := synth.PaperSpecByName("higgs_boson", s.BaseRows)
	train, test := generate(ps)
	r := &Result{
		ID: "Extension: distributed GBT", Title: "gradient boosting on TreeServer (binary logistic, depth-4 trees)",
		Header: Row{"rounds", "cluster time(s)", "serial time(s)", "test accuracy"},
	}
	for _, n := range rounds {
		cfg := gbt.Config{Rounds: n, MaxDepth: 4, LearningRate: 0.3}

		c := mustCluster(train, cluster.Config{
			Workers: s.Workers, Compers: s.Compers, Policy: policyFor(train.NumRows()),
		})
		start := time.Now()
		distModel, err := gbt.Train(c, train, cfg)
		if err != nil {
			c.Close()
			panic(err)
		}
		distTime := time.Since(start)
		c.Close()

		start = time.Now()
		serialModel, err := gbt.Train(&gbt.LocalEngine{Table: train}, train, cfg)
		if err != nil {
			panic(err)
		}
		serialTime := time.Since(start)
		if a, b := distModel.Accuracy(test), serialModel.Accuracy(test); a != b {
			panic(fmt.Sprintf("distributed gbt accuracy %.4f != serial %.4f", a, b))
		}
		r.Rows = append(r.Rows, Row{
			fmt.Sprint(n), fmtSecs(distTime), fmtSecs(serialTime),
			fmt.Sprintf("%.2f%%", distModel.Accuracy(test)*100),
		})
	}
	r.Notes = append(r.Notes,
		"distributed and serial models are verified identical; rounds stay sequential but each round's exact tree trains on the cluster")
	return r
}
