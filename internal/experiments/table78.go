package experiments

import (
	"fmt"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/deepforest"
	"treeserver/internal/forest"
	"treeserver/internal/synth"
)

// TableVII reproduces Table VII: the deep-forest pipeline on the MNIST
// stand-in — per-step training/test times for the slide, MGS and cascade
// phases, plus per-cascade-level test accuracy. Paper shape: training each
// step takes seconds-to-minutes despite the many trees, and accuracy is
// high from CF0 and improves over the first levels.
func TableVII(s Scale) *Result {
	s = s.withDefaults()
	trainN, testN := 1200, 400
	cfg := deepforest.Config{
		Windows: []int{3, 5, 7}, Stride: 7,
		ForestsPerStep: 2, TreesPerForest: 20,
		MGSMaxDepth: 10, CFLevels: 6, Seed: 99,
	}
	if s.Quick {
		trainN, testN = 300, 100
		cfg.Windows = []int{5, 7}
		cfg.TreesPerForest = 8
		cfg.CFLevels = 2
	}
	trainSet := synth.Digits(trainN, 101)
	testSet := synth.Digits(testN, 102)

	_, timings, err := deepforest.Train(trainSet, testSet, cfg, deepforest.LocalFactory(0))
	r := &Result{
		ID: "Table VII", Title: fmt.Sprintf("deep forest on synthetic digits (%d train / %d test, stride %d)", trainN, testN, cfg.Stride),
		Header: Row{"step", "training time(s)", "test time(s)", "test accuracy"},
	}
	if err != nil {
		r.Notes = append(r.Notes, "ERROR: "+err.Error())
		return r
	}
	for _, st := range timings {
		acc := "-"
		if st.HasAccuracy {
			acc = fmt.Sprintf("%.2f%%", st.TestAccuracy*100)
		}
		testT := "-"
		if st.TestSeconds > 0 {
			testT = fmt.Sprintf("%.3f", st.TestSeconds)
		}
		r.Rows = append(r.Rows, Row{st.Step, fmt.Sprintf("%.3f", st.TrainSeconds), testT, acc})
	}
	r.Notes = append(r.Notes,
		"images are synthetic seven-segment digits (MNIST is not shipped); windows slide with a stride to bound MGS dimensionality")
	return r
}

// TableVIIIDmax reproduces Tables VIII(a)/(b): accuracy vs dmax for one
// tree and a 20-tree forest on the Higgs-like dataset. Paper shape:
// accuracy keeps improving with depth (no overfitting yet), time grows
// mildly.
func TableVIIIDmax(s Scale) *Result {
	s = s.withDefaults()
	depths := []int{2, 4, 6, 8, 10, 12}
	if s.Quick {
		depths = []int{2, 6, 10}
	}
	ps, _ := synth.PaperSpecByName("higgs_boson", s.BaseRows)
	train, test := generate(ps)
	r := &Result{
		ID: "Table VIII(a,b)", Title: "effect of dmax on higgs_boson-like data",
		Header: Row{"dmax", "1-tree time(s)", "1-tree acc", "20-tree time(s)", "20-tree acc"},
	}
	for _, d := range depths {
		params := core.Defaults()
		params.MaxDepth = d
		oneTime, oneAcc := runTreeServer(s, train, test, []cluster.TreeSpec{{Params: params}})
		specs := forest.Specs(cluster.SchemaOf(train), forest.Config{
			Trees: 20, Params: params, ColFrac: 0, Bootstrap: true, Seed: 29,
		})
		fTime, fAcc := runTreeServer(s, train, test, specs)
		r.Rows = append(r.Rows, Row{fmt.Sprint(d), fmtSecs(oneTime), oneAcc, fmtSecs(fTime), fAcc})
	}
	return r
}

// TableVIIICols reproduces Tables VIII(c)/(d): the effect of the per-tree
// column fraction |C|/|A| on a 20-tree forest. Paper shape: accuracy is
// fairly flat beyond a modest fraction while time grows with |C|.
func TableVIIICols(s Scale) *Result {
	s = s.withDefaults()
	fracs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	if s.Quick {
		fracs = []float64{0.2, 1.0}
	}
	names := []string{"allstate", "higgs_boson"}
	r := &Result{
		ID: "Table VIII(c,d)", Title: "effect of |C|/|A| (20-tree forest; accuracy = RMSE for allstate)",
		Header: Row{"|C|/|A|"},
	}
	for _, n := range names {
		r.Header = append(r.Header, n+" time(s)", n+" score")
	}
	for _, frac := range fracs {
		row := Row{fmt.Sprintf("%.0f%%", frac*100)}
		for _, name := range names {
			ps, _ := synth.PaperSpecByName(name, s.BaseRows)
			train, test := generate(ps)
			specs := forest.Specs(cluster.SchemaOf(train), forest.Config{
				Trees: 20, Params: core.Defaults(), ColFrac: frac, Bootstrap: true, Seed: 31,
			})
			t, acc := runTreeServer(s, train, test, specs)
			row = append(row, fmtSecs(t), acc)
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}
