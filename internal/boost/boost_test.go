package boost

import (
	"testing"

	"treeserver/internal/dataset"
	"treeserver/internal/synth"
)

func TestRegressionLearnsStep(t *testing.T) {
	// y = 10 when x > 0 else 0: a couple of rounds should fit it closely.
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i-n/2) / 100
		if xs[i] > 0 {
			ys[i] = 10
		}
	}
	tbl := dataset.MustNewTable([]*dataset.Column{
		dataset.NewNumeric("x", xs), dataset.NewNumeric("y", ys),
	}, 1)
	m, err := Train(tbl, Config{Rounds: 20, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rmse := m.RMSE(tbl); rmse > 1.0 {
		t.Fatalf("rmse %.3f too high for a step function", rmse)
	}
}

func TestBinaryClassification(t *testing.T) {
	train, test := synth.Generate(synth.Spec{
		Name: "bin", Rows: 6000, NumNumeric: 8, NumClasses: 2, ConceptDepth: 4, LabelNoise: 0.05, Seed: 51,
	}, 0.25)
	m, err := Train(train, Config{Rounds: 30, MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumClasses != 1 {
		t.Fatalf("binary model has %d class groups, want 1", m.NumClasses)
	}
	if acc := m.Accuracy(test); acc < 0.85 {
		t.Fatalf("binary accuracy %.3f too low", acc)
	}
}

func TestMulticlassSoftmax(t *testing.T) {
	train, test := synth.Generate(synth.Spec{
		Name: "multi", Rows: 6000, NumNumeric: 8, NumClasses: 4, ConceptDepth: 4, Seed: 52,
	}, 0.25)
	m, err := Train(train, Config{Rounds: 15, MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumClasses != 4 {
		t.Fatalf("classes = %d", m.NumClasses)
	}
	if got := len(m.Rounds[0]); got != 4 {
		t.Fatalf("trees per round = %d, want one per class", got)
	}
	if acc := m.Accuracy(test); acc < 0.7 {
		t.Fatalf("multiclass accuracy %.3f too low", acc)
	}
}

func TestAccuracyImprovesWithRounds(t *testing.T) {
	// Table IV(c)'s shape: boosting accuracy keeps improving with trees.
	train, test := synth.Generate(synth.Spec{
		Name: "rounds", Rows: 6000, NumNumeric: 10, NumClasses: 2, ConceptDepth: 6, LabelNoise: 0.05, Seed: 53,
	}, 0.25)
	few, err := Train(train, Config{Rounds: 2, MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Train(train, Config{Rounds: 40, MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	accFew, accMany := few.Accuracy(test), many.Accuracy(test)
	if accMany <= accFew {
		t.Fatalf("accuracy did not improve with rounds: %d trees %.3f vs %d trees %.3f",
			few.NumTrees(), accFew, many.NumTrees(), accMany)
	}
}

func TestMissingValuesLearnedDirection(t *testing.T) {
	// Missing x strongly predicts class 1; the learned default direction
	// must route missing rows correctly.
	n := 2000
	xs := make([]float64, n)
	ys := make([]int32, n)
	col := dataset.NewNumeric("x", xs)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = float64(i % 100)
			ys[i] = 0
		} else {
			col.SetMissing(i)
			ys[i] = 1
		}
	}
	tbl := dataset.MustNewTable([]*dataset.Column{
		col, dataset.NewCategorical("y", ys, []string{"a", "b"}),
	}, 1)
	m, err := Train(tbl, Config{Rounds: 10, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(tbl); acc < 0.95 {
		t.Fatalf("missing-direction accuracy %.3f", acc)
	}
}

func TestCategoricalFeaturesAsCodes(t *testing.T) {
	train, test := synth.Generate(synth.Spec{
		Name: "cat", Rows: 5000, NumNumeric: 2, NumCategorical: 6, CatLevels: 4,
		NumClasses: 2, ConceptDepth: 4, Seed: 54,
	}, 0.25)
	m, err := Train(train, Config{Rounds: 25, MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(test); acc < 0.7 {
		t.Fatalf("categorical accuracy %.3f too low", acc)
	}
}

func TestTreesAreBounded(t *testing.T) {
	train := synth.GenerateTrain(synth.Spec{
		Name: "depth", Rows: 2000, NumNumeric: 5, NumClasses: 2, ConceptDepth: 5, Seed: 55,
	})
	m, err := Train(train, Config{Rounds: 3, MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, trees := range m.Rounds {
		for _, tr := range trees {
			if n := tr.Nodes(); n > 7 { // depth 2 => at most 7 nodes
				t.Fatalf("tree has %d nodes, exceeds depth-2 bound", n)
			}
		}
	}
}

func TestEmptyTableError(t *testing.T) {
	tbl := &dataset.Table{Cols: []*dataset.Column{
		dataset.NewNumeric("x", nil), dataset.NewNumeric("y", nil),
	}, Target: 1}
	if _, err := Train(tbl, Config{Rounds: 1}); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestRegressionBaseScore(t *testing.T) {
	// With zero rounds of effective splitting (constant feature), the model
	// must predict the mean.
	tbl := dataset.MustNewTable([]*dataset.Column{
		dataset.NewNumeric("x", []float64{1, 1, 1, 1}),
		dataset.NewNumeric("y", []float64{2, 4, 6, 8}),
	}, 1)
	m, err := Train(tbl, Config{Rounds: 3, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Base != 5 {
		t.Fatalf("base = %g, want mean 5", m.Base)
	}
	for r := 0; r < 4; r++ {
		if got := m.PredictValue(tbl, r); got != 5 {
			t.Fatalf("row %d predicted %g, want 5 (no split possible)", r, got)
		}
	}
}
