package boost

import (
	"testing"

	"treeserver/internal/synth"
)

// BenchmarkBoostRound measures one boosting round on 10k rows — the unit of
// the strictly sequential work that dominates Table II(c).
func BenchmarkBoostRound(b *testing.B) {
	train := synth.GenerateTrain(synth.Spec{
		Name: "bb", Rows: 10000, NumNumeric: 10, NumClasses: 2, ConceptDepth: 5, Seed: 9,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(train, Config{Rounds: 1, MaxDepth: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBoostPredict measures scoring through a 20-round model.
func BenchmarkBoostPredict(b *testing.B) {
	train := synth.GenerateTrain(synth.Spec{
		Name: "bp", Rows: 5000, NumNumeric: 10, NumClasses: 2, ConceptDepth: 5, Seed: 10,
	})
	m, err := Train(train, Config{Rounds: 20, MaxDepth: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictClass(train, i%train.NumRows())
	}
}
