// Package boost is the XGBoost-style comparator (Chen & Guestrin 2016) the
// paper evaluates against in Tables II(c) and IV(c): second-order gradient
// boosting with weighted-quantile-sketch split proposals. Its defining
// property for the comparison is that trees depend on each other through
// the gradients, so rounds are inherently sequential — only the within-tree
// feature scan parallelises — which is why boosting cannot match
// TreeServer's cross-tree task parallelism however many cores it gets.
package boost

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"treeserver/internal/dataset"
	"treeserver/internal/metrics"
	"treeserver/internal/sketch"
)

// Config are the booster's hyperparameters; zero fields take XGBoost-like
// defaults.
type Config struct {
	// Rounds is the number of boosting rounds (trees per class).
	Rounds int
	// LearningRate is η (default 0.3).
	LearningRate float64
	// MaxDepth bounds each regression tree (default 6).
	MaxDepth int
	// Lambda is the L2 leaf regulariser λ (default 1).
	Lambda float64
	// Gamma is the minimum gain to split γ (default 0).
	Gamma float64
	// MaxBins is the quantile-sketch proposal count per feature (default 32).
	MaxBins int
	// MinChildWeight is the minimum hessian sum per child (default 1).
	MinChildWeight float64
	// Threads parallelises the per-node feature scan (default NumCPU).
	// Trees remain strictly sequential.
	Threads int
}

func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 10
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.3
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 6
	}
	if c.Lambda == 0 {
		c.Lambda = 1
	}
	if c.MaxBins <= 0 {
		c.MaxBins = 32
	}
	if c.MinChildWeight <= 0 {
		c.MinChildWeight = 1
	}
	if c.Threads <= 0 {
		c.Threads = runtime.NumCPU()
	}
	return c
}

// GNode is a node of a gradient tree. Leaves carry the η-scaled weight.
type GNode struct {
	Feature     int
	Threshold   float64
	MissingLeft bool
	Left, Right *GNode
	Leaf        bool
	Weight      float64
}

// GTree is one boosted regression tree over the model's gradient targets.
type GTree struct {
	Root *GNode
}

// score walks a row down the tree using numeric feature views.
func (t *GTree) score(feat featureView, row int) float64 {
	n := t.Root
	for !n.Leaf {
		v, miss := feat.value(n.Feature, row)
		if miss {
			if n.MissingLeft {
				n = n.Left
			} else {
				n = n.Right
			}
			continue
		}
		if v <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Weight
}

// Nodes counts the tree's nodes.
func (t *GTree) Nodes() int {
	var rec func(*GNode) int
	rec = func(n *GNode) int {
		if n == nil {
			return 0
		}
		return 1 + rec(n.Left) + rec(n.Right)
	}
	return rec(t.Root)
}

// Model is a trained gradient-boosted ensemble.
type Model struct {
	Task         dataset.Task
	NumClasses   int // 0 regression, 1 binary logistic, >=3 softmax groups
	Base         float64
	LearningRate float64
	// Rounds[r][k] is round r's tree for class k (k always 0 for
	// regression/binary).
	Rounds [][]*GTree
}

// featureView exposes every column as float64 (categorical codes numeric,
// as XGBoost users typically integer-encode them).
type featureView struct {
	cols   []*dataset.Column
	target int
}

func (f featureView) value(col, row int) (v float64, missing bool) {
	c := f.cols[col]
	if c.IsMissing(row) {
		return 0, true
	}
	if c.Kind == dataset.Numeric {
		return c.Floats[row], false
	}
	return float64(c.Cats[row]), false
}

func (f featureView) features() []int {
	out := make([]int, 0, len(f.cols)-1)
	for i := range f.cols {
		if i != f.target {
			out = append(out, i)
		}
	}
	return out
}

// Train fits a boosted model to the table.
func Train(tbl *dataset.Table, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	n := tbl.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("boost: empty table")
	}
	feat := featureView{cols: tbl.Cols, target: tbl.Target}
	m := &Model{Task: tbl.Task(), LearningRate: cfg.LearningRate}

	switch {
	case m.Task == dataset.Regression:
		m.NumClasses = 0
	case tbl.NumClasses() == 2:
		m.NumClasses = 1
	default:
		m.NumClasses = tbl.NumClasses()
	}

	groups := 1
	if m.NumClasses >= 3 {
		groups = m.NumClasses
	}
	// Margins per row per group.
	margins := make([][]float64, groups)
	for k := range margins {
		margins[k] = make([]float64, n)
	}
	if m.Task == dataset.Regression {
		var sum float64
		y := tbl.Y()
		for r := 0; r < n; r++ {
			sum += y.Floats[r]
		}
		m.Base = sum / float64(n)
		for r := 0; r < n; r++ {
			margins[0][r] = m.Base
		}
	}

	grad := make([]float64, n)
	hess := make([]float64, n)
	for round := 0; round < cfg.Rounds; round++ {
		trees := make([]*GTree, groups)
		for k := 0; k < groups; k++ {
			computeGradients(tbl, m, margins, k, grad, hess)
			tree := growTree(feat, grad, hess, cfg)
			trees[k] = tree
			for r := 0; r < n; r++ {
				margins[k][r] += tree.score(feat, r)
			}
		}
		m.Rounds = append(m.Rounds, trees)
	}
	return m, nil
}

// computeGradients fills first/second-order gradients of the objective at
// the current margins for group k.
func computeGradients(tbl *dataset.Table, m *Model, margins [][]float64, k int, grad, hess []float64) {
	y := tbl.Y()
	n := len(grad)
	switch {
	case m.Task == dataset.Regression:
		for r := 0; r < n; r++ {
			grad[r] = margins[0][r] - y.Floats[r]
			hess[r] = 1
		}
	case m.NumClasses == 1: // binary logistic
		for r := 0; r < n; r++ {
			p := sigmoid(margins[0][r])
			label := float64(y.Cats[r])
			grad[r] = p - label
			hess[r] = math.Max(p*(1-p), 1e-12)
		}
	default: // softmax
		for r := 0; r < n; r++ {
			p := softmaxProb(margins, r, k)
			target := 0.0
			if int(y.Cats[r]) == k {
				target = 1
			}
			grad[r] = p - target
			hess[r] = math.Max(p*(1-p), 1e-12)
		}
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func softmaxProb(margins [][]float64, row, k int) float64 {
	maxM := math.Inf(-1)
	for _, mk := range margins {
		if mk[row] > maxM {
			maxM = mk[row]
		}
	}
	var denom float64
	for _, mk := range margins {
		denom += math.Exp(mk[row] - maxM)
	}
	return math.Exp(margins[k][row]-maxM) / denom
}

// PredictValue returns the regression prediction for a row.
func (m *Model) PredictValue(tbl *dataset.Table, row int) float64 {
	feat := featureView{cols: tbl.Cols, target: tbl.Target}
	out := m.Base
	for _, trees := range m.Rounds {
		out += trees[0].score(feat, row)
	}
	return out
}

// PredictClass returns the predicted class for a row.
func (m *Model) PredictClass(tbl *dataset.Table, row int) int32 {
	feat := featureView{cols: tbl.Cols, target: tbl.Target}
	if m.NumClasses == 1 {
		var margin float64
		for _, trees := range m.Rounds {
			margin += trees[0].score(feat, row)
		}
		if margin > 0 {
			return 1
		}
		return 0
	}
	scores := make([]float64, m.NumClasses)
	for _, trees := range m.Rounds {
		for k, t := range trees {
			scores[k] += t.score(feat, row)
		}
	}
	return metrics.ArgMax(scores)
}

// Accuracy evaluates classification accuracy on a table.
func (m *Model) Accuracy(tbl *dataset.Table) float64 {
	pred := make([]int32, tbl.NumRows())
	for r := range pred {
		pred[r] = m.PredictClass(tbl, r)
	}
	return metrics.Accuracy(pred, tbl.Y().Cats)
}

// RMSE evaluates regression error on a table.
func (m *Model) RMSE(tbl *dataset.Table) float64 {
	pred := make([]float64, tbl.NumRows())
	actual := make([]float64, tbl.NumRows())
	for r := range pred {
		pred[r] = m.PredictValue(tbl, r)
		actual[r] = tbl.Y().Float(r)
	}
	return metrics.RMSE(pred, actual)
}

// NumTrees returns the total tree count across rounds and classes.
func (m *Model) NumTrees() int {
	total := 0
	for _, trees := range m.Rounds {
		total += len(trees)
	}
	return total
}

// --- tree growing ---

type buildNode struct {
	node  *GNode
	rows  []int32
	depth int
}

func growTree(feat featureView, grad, hess []float64, cfg Config) *GTree {
	root := &GNode{}
	rows := make([]int32, len(grad))
	for i := range rows {
		rows[i] = int32(i)
	}
	queue := []buildNode{{root, rows, 0}}
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		var g, h float64
		for _, r := range item.rows {
			g += grad[r]
			h += hess[r]
		}
		best := bestGradientSplit(feat, grad, hess, item.rows, g, h, cfg)
		if item.depth >= cfg.MaxDepth || !best.valid || best.gain <= cfg.Gamma {
			item.node.Leaf = true
			item.node.Weight = -cfg.LearningRate * g / (h + cfg.Lambda)
			continue
		}
		item.node.Feature = best.feature
		item.node.Threshold = best.threshold
		item.node.MissingLeft = best.missingLeft
		item.node.Left, item.node.Right = &GNode{}, &GNode{}
		var left, right []int32
		for _, r := range item.rows {
			v, miss := feat.value(best.feature, int(r))
			goLeft := miss && best.missingLeft || !miss && v <= best.threshold
			if goLeft {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
		queue = append(queue,
			buildNode{item.node.Left, left, item.depth + 1},
			buildNode{item.node.Right, right, item.depth + 1})
	}
	return &GTree{Root: root}
}

type gradSplit struct {
	valid       bool
	feature     int
	threshold   float64
	missingLeft bool
	gain        float64
}

// bestGradientSplit scans every feature in parallel: split candidates come
// from a hessian-weighted quantile sketch of the node's values (the paper's
// "weighted quantile sketch" of XGBoost), and the structure score follows
// the second-order gain formula with learned missing-value direction.
func bestGradientSplit(feat featureView, grad, hess []float64, rows []int32, gTotal, hTotal float64, cfg Config) gradSplit {
	features := feat.features()
	results := make([]gradSplit, len(features))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Threads)
	for i, f := range features {
		wg.Add(1)
		go func(i, f int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = scanFeature(feat, f, grad, hess, rows, gTotal, hTotal, cfg)
		}(i, f)
	}
	wg.Wait()
	best := gradSplit{}
	for _, r := range results {
		if r.valid && (!best.valid || r.gain > best.gain ||
			(r.gain == best.gain && r.feature < best.feature)) {
			best = r
		}
	}
	return best
}

func scanFeature(feat featureView, f int, grad, hess []float64, rows []int32, gTotal, hTotal float64, cfg Config) gradSplit {
	// Propose candidate thresholds from the hessian-weighted sketch.
	sk := sketch.New(4 * cfg.MaxBins)
	var gMiss, hMiss float64
	for _, r := range rows {
		v, miss := feat.value(f, int(r))
		if miss {
			gMiss += grad[r]
			hMiss += hess[r]
			continue
		}
		sk.Add(v, hess[r])
	}
	cuts := sk.Quantiles(cfg.MaxBins)
	if len(cuts) == 0 {
		return gradSplit{}
	}
	// Accumulate per-bin gradient statistics: bin b holds values <= cuts[b].
	nb := len(cuts) + 1
	gBin := make([]float64, nb)
	hBin := make([]float64, nb)
	for _, r := range rows {
		v, miss := feat.value(f, int(r))
		if miss {
			continue
		}
		b := lowerBound(cuts, v)
		gBin[b] += grad[r]
		hBin[b] += hess[r]
	}
	parentScore := gTotal * gTotal / (hTotal + cfg.Lambda)
	best := gradSplit{feature: f}
	var gL, hL float64
	gPresent, hPresent := gTotal-gMiss, hTotal-hMiss
	for b := 0; b < nb-1; b++ {
		gL += gBin[b]
		hL += hBin[b]
		gR := gPresent - gL
		hR := hPresent - hL
		// Try both default directions for the missing block.
		for _, missLeft := range [2]bool{true, false} {
			gl, hl, gr, hr := gL, hL, gR, hR
			if missLeft {
				gl += gMiss
				hl += hMiss
			} else {
				gr += gMiss
				hr += hMiss
			}
			if hl < cfg.MinChildWeight || hr < cfg.MinChildWeight {
				continue
			}
			gain := 0.5 * (gl*gl/(hl+cfg.Lambda) + gr*gr/(hr+cfg.Lambda) - parentScore)
			if !best.valid || gain > best.gain {
				best = gradSplit{valid: true, feature: f, threshold: cuts[b], missingLeft: missLeft, gain: gain}
			}
		}
	}
	return best
}

// lowerBound returns the first index i with v <= cuts[i], or len(cuts).
func lowerBound(cuts []float64, v float64) int {
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= cuts[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
