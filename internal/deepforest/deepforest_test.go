package deepforest

import (
	"fmt"
	"testing"

	"treeserver/internal/cluster"
	"treeserver/internal/synth"
	"treeserver/internal/task"
)

// smallConfig keeps the pipeline laptop-sized: 2 windows, large stride,
// small forests, 2 cascade levels.
func smallConfig() Config {
	return Config{
		Windows: []int{5, 7}, Stride: 7,
		ForestsPerStep: 2, TreesPerForest: 8,
		MGSMaxDepth: 8, CFLevels: 2, Seed: 1,
	}
}

func TestDeepForestLocalPipeline(t *testing.T) {
	train := synth.Digits(300, 21)
	test := synth.Digits(120, 22)
	model, timings, err := Train(train, test, smallConfig(), LocalFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(model.MGS) != 2 {
		t.Fatalf("MGS windows = %d", len(model.MGS))
	}
	if len(model.CF) != 2 {
		t.Fatalf("CF levels = %d", len(model.CF))
	}
	// Timings cover slide + per-window train/extract + per-level train/extract.
	wantSteps := 1 + 2*2 + 2*2
	if len(timings) != wantSteps {
		t.Fatalf("timings = %d steps, want %d", len(timings), wantSteps)
	}
	var lastAcc float64
	sawAcc := 0
	for _, st := range timings {
		if st.HasAccuracy {
			sawAcc++
			lastAcc = st.TestAccuracy
		}
	}
	if sawAcc != 2 {
		t.Fatalf("accuracy recorded for %d steps, want one per CF level", sawAcc)
	}
	// Seven-segment digits through a deep forest: well above 10% chance.
	if lastAcc < 0.5 {
		t.Fatalf("final cascade accuracy %.3f too low", lastAcc)
	}
}

func TestDeepForestClusterFactory(t *testing.T) {
	train := synth.Digits(200, 23)
	test := synth.Digits(80, 24)
	cfg := smallConfig()
	cfg.TreesPerForest = 6
	cfg.CFLevels = 1
	cfg.Windows = []int{7}
	factory := ClusterFactory(
		cluster.WithWorkers(3), cluster.WithCompers(2),
		cluster.WithPolicy(task.Policy{TauD: 2000, TauDFS: 8000, NPool: 16}),
	)
	model, timings, err := Train(train, test, cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.CF) != 1 {
		t.Fatalf("levels = %d", len(model.CF))
	}
	for _, st := range timings {
		if st.TrainSeconds < 0 {
			t.Fatalf("negative timing in %q", st.Step)
		}
	}
}

func TestDeepForestExtraTrees(t *testing.T) {
	train := synth.Digits(200, 25)
	test := synth.Digits(80, 26)
	cfg := smallConfig()
	cfg.ExtraTrees = true
	cfg.CFLevels = 1
	model, _, err := Train(train, test, cfg, LocalFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	for w, forests := range model.MGS {
		if len(forests) != 2 {
			t.Fatalf("window %d forests = %d", w, len(forests))
		}
	}
}

func TestPredictSingleImage(t *testing.T) {
	train := synth.Digits(300, 27)
	test := synth.Digits(50, 28)
	cfg := smallConfig()
	model, _, err := Train(train, test, cfg, LocalFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	hit := 0
	for i := 0; i < 20; i++ {
		if model.Predict(test, i) == test.Labels[i] {
			hit++
		}
	}
	if hit < 8 { // 10 classes; chance would be ~2
		t.Fatalf("single-image prediction hit %d/20", hit)
	}
}

func TestSlidePositions(t *testing.T) {
	set := synth.Digits(5, 29)
	ps := slide(set, 7, 7, 2)
	if ps.perImg != 16 { // (28-7)/7+1 = 4 per dim
		t.Fatalf("positions = %d, want 16", ps.perImg)
	}
	if len(ps.patches) != 5*16 {
		t.Fatalf("patches = %d", len(ps.patches))
	}
	for i, p := range ps.patches {
		if len(p) != 49 {
			t.Fatalf("patch %d dims = %d", i, len(p))
		}
	}
	// Labels repeat per image.
	for i := 0; i < 16; i++ {
		if ps.labels[i] != set.Labels[0] {
			t.Fatal("patch labels wrong")
		}
	}
}

func TestConcatFeatures(t *testing.T) {
	b := [][]float64{{1, 2}, {3, 4}}
	out := concatFeatures(nil, b)
	if len(out) != 2 || len(out[0]) != 2 {
		t.Fatalf("nil concat = %v", out)
	}
	out[0][0] = 99
	if b[0][0] != 1 {
		t.Fatal("concat aliases input")
	}
	a := [][]float64{{9}, {8}}
	out = concatFeatures(a, b)
	if len(out[0]) != 3 || out[0][0] != 9 || out[0][2] != 2 {
		t.Fatalf("concat = %v", out)
	}
}

func TestTableFromMatrix(t *testing.T) {
	tbl := tableFromMatrix([][]float64{{1, 2}, {3, 4}}, []int32{0, 1}, 2)
	if tbl.NumRows() != 2 || tbl.NumCols() != 3 {
		t.Fatalf("shape %dx%d", tbl.NumRows(), tbl.NumCols())
	}
	if tbl.Y().Cat(1) != 1 || tbl.Cols[1].Float(1) != 4 {
		t.Fatal("contents wrong")
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStepNamesMatchPaper(t *testing.T) {
	train := synth.Digits(100, 30)
	test := synth.Digits(40, 31)
	cfg := smallConfig()
	cfg.Windows = []int{3, 5, 7}
	cfg.Stride = 7
	cfg.CFLevels = 1
	cfg.TreesPerForest = 4
	_, timings, err := Train(train, test, cfg, LocalFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"slide": false, "win3train": false, "win5train": false, "win7train": false,
		"win3extract": false, "win5extract": false, "win7extract": false,
		"CF0train": false, "CF0extract": false,
	}
	for _, st := range timings {
		if _, ok := want[st.Step]; ok {
			want[st.Step] = true
		} else {
			t.Fatalf("unexpected step %q", st.Step)
		}
	}
	for step, seen := range want {
		if !seen {
			t.Fatalf("step %q missing (Table VII rows)", step)
		}
	}
	_ = fmt.Sprint()
}
