// Package deepforest implements the paper's Section-VII case study: the
// deep forest model (Zhou & Feng 2017) built out of TreeServer jobs. The
// model has two phases — multi-grained scanning (MGS), which slides windows
// of several sizes over raw images and trains forests on the extracted
// patches, and a cascade forest (CF), whose levels consume the previous
// level's class-vector outputs concatenated with MGS re-representations.
//
// Each forest is one TreeServer job (a batch of independent tree specs);
// the two row-parallel operations of Section VII — window sliding and
// re-representation ("extract") — are parallelised across images, exactly
// as the paper partitions them across machine threads.
package deepforest

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"treeserver/internal/cluster"
	"treeserver/internal/core"
	"treeserver/internal/dataset"
	"treeserver/internal/forest"
	"treeserver/internal/metrics"
	"treeserver/internal/synth"
)

// Config shapes the deep forest. Zero fields take the Table-VII settings
// the paper tuned: windows 3/5/7, 2 forests × 20 trees per step, dmax = 10
// in MGS, 6 cascade levels.
type Config struct {
	Windows        []int
	Stride         int // window stride; >1 subsamples positions for scale
	ForestsPerStep int
	TreesPerForest int
	MGSMaxDepth    int
	CFMaxDepth     int // 0 = unlimited, like the paper's CF stage
	CFLevels       int
	ExtraTrees     bool // use extra-trees for half the forests (paper's alternative)
	Seed           int64
	Parallelism    int // image-level parallelism for slide/extract jobs
}

func (c Config) withDefaults() Config {
	if len(c.Windows) == 0 {
		c.Windows = []int{3, 5, 7}
	}
	if c.Stride <= 0 {
		c.Stride = 1
	}
	if c.ForestsPerStep <= 0 {
		c.ForestsPerStep = 2
	}
	if c.TreesPerForest <= 0 {
		c.TreesPerForest = 20
	}
	if c.MGSMaxDepth <= 0 {
		c.MGSMaxDepth = 10
	}
	if c.CFLevels <= 0 {
		c.CFLevels = 6
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	return c
}

// TrainerFactory builds a forest.Trainer for a freshly materialised feature
// table. The cluster-backed factory spins a TreeServer deployment over the
// table; the local factory wraps forest.Local.
type TrainerFactory func(tbl *dataset.Table) (forest.Trainer, func())

// LocalFactory trains each job on the local machine.
func LocalFactory(parallelism int) TrainerFactory {
	return func(tbl *dataset.Table) (forest.Trainer, func()) {
		return &forest.Local{Table: tbl, Parallelism: parallelism}, func() {}
	}
}

// ClusterFactory runs each job on a fresh in-process TreeServer cluster
// configured by the given options. The options are caller-chosen constants,
// so a configuration rejected by cluster.NewInProcess is a programming error
// and panics rather than failing every pipeline step.
func ClusterFactory(opts ...cluster.Option) TrainerFactory {
	return func(tbl *dataset.Table) (forest.Trainer, func()) {
		c, err := cluster.NewInProcess(tbl, opts...)
		if err != nil {
			panic(fmt.Errorf("deepforest: cluster factory: %w", err))
		}
		return c, c.Close
	}
}

// Model is a trained deep forest.
type Model struct {
	cfg        Config
	NumClasses int
	// MGS[w] holds the window-w step's forests.
	MGS map[int][]*forest.Forest
	// CF[level] holds the cascade level's forests.
	CF [][]*forest.Forest
}

// StepTiming records one pipeline step for Table VII.
type StepTiming struct {
	Step         string
	TrainSeconds float64
	TestSeconds  float64
	TestAccuracy float64 // only for CF extract steps; NaN elsewhere
	HasAccuracy  bool
}

// Train builds a deep forest on the training images and evaluates each
// cascade level on the test images, returning the per-step timings the
// paper reports in Table VII.
func Train(trainSet, testSet *synth.ImageSet, cfg Config, factory TrainerFactory) (*Model, []StepTiming, error) {
	cfg = cfg.withDefaults()
	m := &Model{cfg: cfg, NumClasses: trainSet.NumClasses(), MGS: map[int][]*forest.Forest{}}
	var timings []StepTiming

	// Step "slide": window extraction over all images, all window sizes.
	slideStart := time.Now()
	trainPatches := map[int]*patchSet{}
	for _, w := range cfg.Windows {
		trainPatches[w] = slide(trainSet, w, cfg.Stride, cfg.Parallelism)
	}
	slideTrain := time.Since(slideStart).Seconds()
	slideStart = time.Now()
	testPatches := map[int]*patchSet{}
	for _, w := range cfg.Windows {
		testPatches[w] = slide(testSet, w, cfg.Stride, cfg.Parallelism)
	}
	timings = append(timings, StepTiming{Step: "slide", TrainSeconds: slideTrain, TestSeconds: time.Since(slideStart).Seconds()})

	// MGS: train forests per window, then re-represent both sets.
	mgsTrainFeat := map[int][][]float64{}
	mgsTestFeat := map[int][][]float64{}
	for wi, w := range cfg.Windows {
		start := time.Now()
		tbl := trainPatches[w].table(trainSet, m.NumClasses)
		forests, err := m.trainStep(tbl, cfg.MGSMaxDepth, cfg.Seed+int64(1000*wi), factory)
		if err != nil {
			return nil, nil, fmt.Errorf("deepforest: MGS window %d: %w", w, err)
		}
		m.MGS[w] = forests
		timings = append(timings, StepTiming{Step: fmt.Sprintf("win%dtrain", w), TrainSeconds: time.Since(start).Seconds()})

		start = time.Now()
		mgsTrainFeat[w] = extract(trainPatches[w], forests, m.NumClasses, cfg.Parallelism)
		trainSecs := time.Since(start).Seconds()
		start = time.Now()
		mgsTestFeat[w] = extract(testPatches[w], forests, m.NumClasses, cfg.Parallelism)
		timings = append(timings, StepTiming{
			Step: fmt.Sprintf("win%dextract", w), TrainSeconds: trainSecs,
			TestSeconds: time.Since(start).Seconds(),
		})
	}

	// Cascade forest. Level 0 consumes the smallest window's features;
	// later levels concatenate the previous level's output with the MGS
	// features of windows cycled in order, as in Fig. 11.
	var prevTrain, prevTest [][]float64
	for level := 0; level < cfg.CFLevels; level++ {
		w := cfg.Windows[level%len(cfg.Windows)]
		inTrain := concatFeatures(prevTrain, mgsTrainFeat[w])
		inTest := concatFeatures(prevTest, mgsTestFeat[w])

		start := time.Now()
		tbl := tableFromMatrix(inTrain, trainSet.Labels, m.NumClasses)
		forests, err := m.trainStep(tbl, cfg.CFMaxDepth, cfg.Seed+int64(77*level), factory)
		if err != nil {
			return nil, nil, fmt.Errorf("deepforest: CF level %d: %w", level, err)
		}
		m.CF = append(m.CF, forests)
		trainSecs := time.Since(start).Seconds()
		timings = append(timings, StepTiming{Step: fmt.Sprintf("CF%dtrain", level), TrainSeconds: trainSecs})

		start = time.Now()
		prevTrain = cfOutputs(forests, inTrain, trainSet.Labels, m.NumClasses, cfg.Parallelism)
		extractTrain := time.Since(start).Seconds()
		start = time.Now()
		prevTest = cfOutputs(forests, inTest, testSet.Labels, m.NumClasses, cfg.Parallelism)
		extractTest := time.Since(start).Seconds()

		acc := levelAccuracy(prevTest, testSet.Labels, m.NumClasses)
		timings = append(timings, StepTiming{
			Step: fmt.Sprintf("CF%dextract", level), TrainSeconds: extractTrain,
			TestSeconds: extractTest, TestAccuracy: acc, HasAccuracy: true,
		})
	}
	return m, timings, nil
}

// trainStep trains one step's forests (one TreeServer job each).
func (m *Model) trainStep(tbl *dataset.Table, maxDepth int, seed int64, factory TrainerFactory) ([]*forest.Forest, error) {
	trainer, done := factory(tbl)
	defer done()
	schema := cluster.SchemaOf(tbl)
	forests := make([]*forest.Forest, m.cfg.ForestsPerStep)
	for i := range forests {
		fcfg := forest.Config{
			Trees:  m.cfg.TreesPerForest,
			Params: core.Params{MaxDepth: maxDepth, MinLeaf: 1},
			Seed:   seed + int64(i),
		}
		if m.cfg.ExtraTrees && i%2 == 1 {
			fcfg.ExtraTrees = true
		}
		f, err := forest.Train(trainer, schema, fcfg)
		if err != nil {
			return nil, err
		}
		forests[i] = f
	}
	return forests, nil
}

// patchSet holds all window patches of an image set, grouped per image.
type patchSet struct {
	win     int
	perImg  int
	patches [][]float64 // flattened: image i occupies [i*perImg, (i+1)*perImg)
	labels  []int32     // per patch
	images  int
}

// slide extracts stride-spaced win×win patches from every image in
// parallel — the paper's first row-parallel operation.
func slide(set *synth.ImageSet, win, stride, parallelism int) *patchSet {
	posX := (set.W-win)/stride + 1
	posY := (set.H-win)/stride + 1
	perImg := posX * posY
	ps := &patchSet{
		win: win, perImg: perImg, images: set.Len(),
		patches: make([][]float64, set.Len()*perImg),
		labels:  make([]int32, set.Len()*perImg),
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for i := 0; i < set.Len(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			img := set.Images[i]
			out := i * perImg
			for y := 0; y+win <= set.H; y += stride {
				for x := 0; x+win <= set.W; x += stride {
					p := make([]float64, win*win)
					for dy := 0; dy < win; dy++ {
						copy(p[dy*win:(dy+1)*win], img[(y+dy)*set.W+x:(y+dy)*set.W+x+win])
					}
					ps.patches[out] = p
					ps.labels[out] = set.Labels[i]
					out++
				}
			}
		}(i)
	}
	wg.Wait()
	return ps
}

// table materialises the patch set as a training table.
func (ps *patchSet) table(set *synth.ImageSet, numClasses int) *dataset.Table {
	return tableFromMatrix(ps.patches, ps.labels, numClasses)
}

// tableFromMatrix builds a numeric feature table with a categorical label.
func tableFromMatrix(rows [][]float64, labels []int32, numClasses int) *dataset.Table {
	dims := 0
	if len(rows) > 0 {
		dims = len(rows[0])
	}
	cols := make([]*dataset.Column, dims+1)
	for d := 0; d < dims; d++ {
		vals := make([]float64, len(rows))
		for r := range rows {
			vals[r] = rows[r][d]
		}
		cols[d] = dataset.NewNumeric(fmt.Sprintf("f%d", d), vals)
	}
	levels := make([]string, numClasses)
	for i := range levels {
		levels[i] = fmt.Sprintf("C%d", i)
	}
	cols[dims] = dataset.NewCategorical("Y", labels, levels)
	return dataset.MustNewTable(cols, dims)
}

// extract re-represents images through the trained MGS forests: for each
// image, the concatenation over window positions and forests of the k-D
// class vectors — the paper's second row-parallel operation.
func extract(ps *patchSet, forests []*forest.Forest, numClasses, parallelism int) [][]float64 {
	dims := ps.perImg * len(forests) * numClasses
	out := make([][]float64, ps.images)
	tbl := tableFromMatrix(ps.patches, ps.labels, numClasses)
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for i := 0; i < ps.images; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			feat := make([]float64, 0, dims)
			for pos := 0; pos < ps.perImg; pos++ {
				row := i*ps.perImg + pos
				for _, f := range forests {
					feat = append(feat, f.PredictPMF(tbl, row, 0)...)
				}
			}
			out[i] = feat
		}(i)
	}
	wg.Wait()
	return out
}

// cfOutputs computes one cascade level's re-representation: each forest's
// PMF for each input row, concatenated.
func cfOutputs(forests []*forest.Forest, features [][]float64, labels []int32, numClasses, parallelism int) [][]float64 {
	tbl := tableFromMatrix(features, labels, numClasses)
	out := make([][]float64, len(features))
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for i := range features {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			feat := make([]float64, 0, len(forests)*numClasses)
			for _, f := range forests {
				feat = append(feat, f.PredictPMF(tbl, i, 0)...)
			}
			out[i] = feat
		}(i)
	}
	wg.Wait()
	return out
}

// concatFeatures concatenates two per-image feature matrices (a may be nil).
func concatFeatures(a, b [][]float64) [][]float64 {
	if a == nil {
		out := make([][]float64, len(b))
		for i := range b {
			out[i] = append([]float64(nil), b[i]...)
		}
		return out
	}
	out := make([][]float64, len(a))
	for i := range a {
		row := make([]float64, 0, len(a[i])+len(b[i]))
		row = append(row, a[i]...)
		row = append(row, b[i]...)
		out[i] = row
	}
	return out
}

// levelAccuracy scores a level: average the forests' PMF blocks within each
// output vector and take the argmax.
func levelAccuracy(outputs [][]float64, labels []int32, numClasses int) float64 {
	pred := make([]int32, len(outputs))
	for i, vec := range outputs {
		avg := make([]float64, numClasses)
		blocks := len(vec) / numClasses
		for b := 0; b < blocks; b++ {
			for k := 0; k < numClasses; k++ {
				avg[k] += vec[b*numClasses+k]
			}
		}
		pred[i] = metrics.ArgMax(avg)
	}
	return metrics.Accuracy(pred, labels)
}

// Predict classifies one image end-to-end through the trained model.
func (m *Model) Predict(set *synth.ImageSet, index int) int32 {
	single := &synth.ImageSet{W: set.W, H: set.H,
		Images: [][]float64{set.Images[index]}, Labels: []int32{set.Labels[index]}}
	feats := map[int][][]float64{}
	for _, w := range m.cfg.Windows {
		ps := slide(single, w, m.cfg.Stride, 1)
		feats[w] = extract(ps, m.MGS[w], m.NumClasses, 1)
	}
	var prev [][]float64
	for level, forests := range m.CF {
		w := m.cfg.Windows[level%len(m.cfg.Windows)]
		in := concatFeatures(prev, feats[w])
		prev = cfOutputs(forests, in, single.Labels, m.NumClasses, 1)
	}
	avg := make([]float64, m.NumClasses)
	blocks := len(prev[0]) / m.NumClasses
	for b := 0; b < blocks; b++ {
		for k := 0; k < m.NumClasses; k++ {
			avg[k] += prev[0][b*m.NumClasses+k]
		}
	}
	return metrics.ArgMax(avg)
}
