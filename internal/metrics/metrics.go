// Package metrics provides the evaluation measures the paper reports:
// classification accuracy, regression RMSE, plus confusion matrices and the
// averaging helpers ensemble predictors need.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Accuracy returns the fraction of rows where predicted == actual.
func Accuracy(pred, actual []int32) float64 {
	if len(pred) != len(actual) {
		panic(fmt.Sprintf("metrics: accuracy length mismatch %d vs %d", len(pred), len(actual)))
	}
	if len(pred) == 0 {
		return 0
	}
	hit := 0
	for i := range pred {
		if pred[i] == actual[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pred))
}

// RMSE returns the root mean squared error.
func RMSE(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic(fmt.Sprintf("metrics: rmse length mismatch %d vs %d", len(pred), len(actual)))
	}
	if len(pred) == 0 {
		return 0
	}
	var sum float64
	for i := range pred {
		d := pred[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred)))
}

// ConfusionMatrix counts [actual][predicted] pairs over k classes.
type ConfusionMatrix struct {
	K      int
	Counts [][]int
}

// NewConfusionMatrix allocates a k×k matrix.
func NewConfusionMatrix(k int) *ConfusionMatrix {
	m := &ConfusionMatrix{K: k, Counts: make([][]int, k)}
	for i := range m.Counts {
		m.Counts[i] = make([]int, k)
	}
	return m
}

// Add records one (actual, predicted) observation.
func (m *ConfusionMatrix) Add(actual, pred int32) { m.Counts[actual][pred]++ }

// Accuracy returns the trace / total of the matrix.
func (m *ConfusionMatrix) Accuracy() float64 {
	diag, total := 0, 0
	for i := range m.Counts {
		for j, c := range m.Counts[i] {
			total += c
			if i == j {
				diag += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// String renders the matrix for debugging.
func (m *ConfusionMatrix) String() string {
	var b strings.Builder
	for i := range m.Counts {
		for j, c := range m.Counts[i] {
			if j > 0 {
				b.WriteByte('\t')
			}
			fmt.Fprintf(&b, "%d", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ArgMax returns the index of the largest value (lowest index on ties),
// or -1 for an empty slice.
func ArgMax(v []float64) int32 {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return int32(best)
}

// MeanVectors averages a set of equal-length vectors elementwise — the
// forest-level PMF combination deep forest uses. Returns nil when vs is
// empty.
func MeanVectors(vs [][]float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	out := make([]float64, len(vs[0]))
	for _, v := range vs {
		for i, x := range v {
			out[i] += x
		}
	}
	for i := range out {
		out[i] /= float64(len(vs))
	}
	return out
}

// AddScaled adds scale*src into dst elementwise, allocating dst when nil.
func AddScaled(dst, src []float64, scale float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(src))
	}
	for i, x := range src {
		dst[i] += scale * x
	}
	return dst
}
