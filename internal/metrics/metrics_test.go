package metrics

import (
	"math"
	"testing"
)

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int32{1, 2, 3}, []int32{1, 0, 3}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %g", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy must be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch not caught")
		}
	}()
	Accuracy([]int32{1}, []int32{1, 2})
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("perfect rmse = %g", got)
	}
	// Errors {3, 4}: RMSE = sqrt((9+16)/2) = 3.5355...
	got := RMSE([]float64{3, 0}, []float64{0, 4})
	if math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("rmse = %g", got)
	}
}

func TestConfusionMatrix(t *testing.T) {
	m := NewConfusionMatrix(3)
	m.Add(0, 0)
	m.Add(0, 1)
	m.Add(1, 1)
	m.Add(2, 2)
	if got := m.Accuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("accuracy = %g", got)
	}
	if m.Counts[0][1] != 1 {
		t.Fatal("off-diagonal count wrong")
	}
	if m.String() == "" {
		t.Fatal("empty render")
	}
	if NewConfusionMatrix(2).Accuracy() != 0 {
		t.Fatal("empty matrix accuracy must be 0")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax(nil) != -1 {
		t.Fatal("empty argmax")
	}
	if ArgMax([]float64{0.1, 0.7, 0.2}) != 1 {
		t.Fatal("argmax wrong")
	}
	if ArgMax([]float64{0.5, 0.5}) != 0 {
		t.Fatal("tie must break low")
	}
}

func TestMeanVectors(t *testing.T) {
	if MeanVectors(nil) != nil {
		t.Fatal("empty mean")
	}
	got := MeanVectors([][]float64{{1, 2}, {3, 4}})
	if got[0] != 2 || got[1] != 3 {
		t.Fatalf("mean = %v", got)
	}
}

func TestAddScaled(t *testing.T) {
	dst := AddScaled(nil, []float64{1, 2}, 2)
	if dst[0] != 2 || dst[1] != 4 {
		t.Fatalf("addscaled = %v", dst)
	}
	dst = AddScaled(dst, []float64{1, 1}, -1)
	if dst[0] != 1 || dst[1] != 3 {
		t.Fatalf("addscaled = %v", dst)
	}
}
