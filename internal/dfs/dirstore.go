package dfs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FS is the filesystem contract the layout functions operate over. Store
// (in-memory, with IO-cost simulation) and DirStore (on disk, for the CLI
// tools) both satisfy it.
type FS interface {
	Put(path string, data []byte)
	Read(path string) ([]byte, error)
	Reader(path string) (*bytes.Reader, error)
	Exists(path string) bool
	List(prefix string) []string
}

// DirStore persists DFS files under a root directory, so cmd/tsput can
// upload a table once and cmd/treeserver processes can load their column
// groups from a shared mount — the deployment shape the paper assumes from
// HDFS.
type DirStore struct {
	Root string
}

// NewDirStore creates (if needed) and opens a directory-backed store.
func NewDirStore(root string) (*DirStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("dfs: creating store root: %w", err)
	}
	return &DirStore{Root: root}, nil
}

// resolve maps a store path to a filesystem path, flattening separators so
// arbitrary store names cannot escape the root.
func (d *DirStore) resolve(path string) string {
	clean := strings.ReplaceAll(path, "/", "__")
	return filepath.Join(d.Root, clean)
}

// Put implements FS. Write errors panic: the CLI treats a failed upload as
// fatal, and the FS interface mirrors the in-memory store's infallible Put.
func (d *DirStore) Put(path string, data []byte) {
	if err := os.WriteFile(d.resolve(path), data, 0o644); err != nil {
		panic(fmt.Sprintf("dfs: writing %s: %v", path, err))
	}
}

// Read implements FS.
func (d *DirStore) Read(path string) ([]byte, error) {
	data, err := os.ReadFile(d.resolve(path))
	if err != nil {
		return nil, fmt.Errorf("dfs: file %q: %w", path, err)
	}
	return data, nil
}

// Reader implements FS.
func (d *DirStore) Reader(path string) (*bytes.Reader, error) {
	data, err := d.Read(path)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(data), nil
}

// Exists implements FS.
func (d *DirStore) Exists(path string) bool {
	_, err := os.Stat(d.resolve(path))
	return err == nil
}

// List implements FS.
func (d *DirStore) List(prefix string) []string {
	entries, err := os.ReadDir(d.Root)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		name := strings.ReplaceAll(e.Name(), "__", "/")
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
