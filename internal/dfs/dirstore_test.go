package dfs

import (
	"testing"
)

func TestDirStoreBasics(t *testing.T) {
	s, err := NewDirStore(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	s.Put("tables/t1/_meta", []byte("meta"))
	s.Put("tables/t1/cg0000_rg0000", []byte("cell"))
	if !s.Exists("tables/t1/_meta") || s.Exists("nope") {
		t.Fatal("exists wrong")
	}
	data, err := s.Read("tables/t1/_meta")
	if err != nil || string(data) != "meta" {
		t.Fatalf("read = %q, %v", data, err)
	}
	r, err := s.Reader("tables/t1/cg0000_rg0000")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := r.Read(buf); err != nil || string(buf) != "cell" {
		t.Fatalf("reader = %q, %v", buf, err)
	}
	if _, err := s.Read("missing"); err == nil {
		t.Fatal("missing read succeeded")
	}
	got := s.List("tables/t1/")
	if len(got) != 2 || got[0] != "tables/t1/_meta" {
		t.Fatalf("list = %v", got)
	}
}

func TestDirStorePathsCannotEscape(t *testing.T) {
	root := t.TempDir() + "/store"
	s, err := NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("../../evil", []byte("x"))
	// The flattened name must stay inside the root.
	if len(s.List("../../")) != 1 {
		t.Fatal("flattened path not listed")
	}
	data, err := s.Read("../../evil")
	if err != nil || string(data) != "x" {
		t.Fatal("flattened round trip failed")
	}
}

func TestDirStoreLayoutRoundTrip(t *testing.T) {
	s, err := NewDirStore(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	tbl := makeTable(t, 400)
	if _, err := PutTable(s, "t", tbl, 3, 100); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTable(s, "t")
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, tbl, back)

	// Column loading path too.
	l, err := ReadLayout(s, "t")
	if err != nil {
		t.Fatal(err)
	}
	cols, err := LoadColumns(s, "t", l, []int{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if cols[2].Len() != 400 || cols[6].Len() != 400 {
		t.Fatal("columns incomplete")
	}
}
