package dfs

import (
	"testing"
	"time"

	"treeserver/internal/dataset"
	"treeserver/internal/synth"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore(Config{})
	s.Put("a/b", []byte("hello"))
	if !s.Exists("a/b") || s.Exists("a/c") {
		t.Fatal("exists wrong")
	}
	data, err := s.Read("a/b")
	if err != nil || string(data) != "hello" {
		t.Fatalf("read = %q, %v", data, err)
	}
	// Returned data must be a copy.
	data[0] = 'X'
	again, _ := s.Read("a/b")
	if string(again) != "hello" {
		t.Fatal("read shares store memory")
	}
	if _, err := s.Read("missing"); err == nil {
		t.Fatal("missing file read succeeded")
	}
	s.Delete("a/b")
	if s.Exists("a/b") {
		t.Fatal("delete failed")
	}
}

func TestStoreList(t *testing.T) {
	s := NewStore(Config{})
	s.Put("t/x1", []byte("1"))
	s.Put("t/x0", []byte("0"))
	s.Put("other", []byte("z"))
	got := s.List("t/")
	if len(got) != 2 || got[0] != "t/x0" || got[1] != "t/x1" {
		t.Fatalf("list = %v", got)
	}
}

func TestStoreAccounting(t *testing.T) {
	s := NewStore(Config{ConnectLatency: time.Millisecond, ThroughputBps: 1e6})
	payload := make([]byte, 10_000)
	s.Put("f", payload)
	for i := 0; i < 3; i++ {
		if _, err := s.Read("f"); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Opens != 3 || st.BytesRead != 30_000 {
		t.Fatalf("stats = %+v", st)
	}
	// 3 connects (3ms) + 30KB at 1MB/s (30ms) = 33ms simulated, no sleep.
	want := 33 * time.Millisecond
	if st.SimulatedTime < want-time.Millisecond || st.SimulatedTime > want+time.Millisecond {
		t.Fatalf("simulated = %v, want ~%v", st.SimulatedTime, want)
	}
	s.ResetStats()
	if s.Stats().Opens != 0 {
		t.Fatal("reset failed")
	}
}

func makeTable(t *testing.T, rows int) *dataset.Table {
	t.Helper()
	return synth.GenerateTrain(synth.Spec{
		Name: "dfs", Rows: rows, NumNumeric: 5, NumCategorical: 3, CatLevels: 4,
		NumClasses: 2, MissingRate: 0.05, ConceptDepth: 3, Seed: 71,
	})
}

func tablesEqual(t *testing.T, a, b *dataset.Table) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() || a.Target != b.Target {
		t.Fatalf("shape mismatch %dx%d vs %dx%d", a.NumRows(), a.NumCols(), b.NumRows(), b.NumCols())
	}
	for ci := range a.Cols {
		ca, cb := a.Cols[ci], b.Cols[ci]
		if ca.Name != cb.Name || ca.Kind != cb.Kind {
			t.Fatalf("col %d metadata mismatch", ci)
		}
		for r := 0; r < a.NumRows(); r++ {
			if ca.IsMissing(r) != cb.IsMissing(r) {
				t.Fatalf("col %d row %d missing mismatch", ci, r)
			}
			if ca.IsMissing(r) {
				continue
			}
			if ca.Kind == dataset.Numeric {
				if ca.Floats[r] != cb.Floats[r] {
					t.Fatalf("col %d row %d value mismatch", ci, r)
				}
			} else if ca.Cats[r] != cb.Cats[r] {
				t.Fatalf("col %d row %d code mismatch", ci, r)
			}
		}
	}
}

func TestPutLoadTableRoundTrip(t *testing.T) {
	tbl := makeTable(t, 1000)
	s := NewStore(Config{})
	if _, err := PutTable(s, "data/t1", tbl, 3, 250); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTable(s, "data/t1")
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, tbl, back)
}

func TestLoadColumnsFullColumns(t *testing.T) {
	tbl := makeTable(t, 900)
	s := NewStore(Config{})
	l, err := PutTable(s, "d", tbl, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := LoadColumns(s, "d", l, []int{0, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, ci := range []int{0, 4, 7} {
		got := cols[ci]
		if got == nil || got.Len() != 900 {
			t.Fatalf("col %d incomplete", ci)
		}
		want := tbl.Cols[ci]
		for r := 0; r < 900; r++ {
			if got.IsMissing(r) != want.IsMissing(r) {
				t.Fatalf("col %d row %d missing mismatch", ci, r)
			}
			if want.IsMissing(r) {
				continue
			}
			if want.Kind == dataset.Numeric && got.Floats[r] != want.Floats[r] {
				t.Fatalf("col %d row %d mismatch", ci, r)
			}
			if want.Kind == dataset.Categorical && got.Cats[r] != want.Cats[r] {
				t.Fatalf("col %d row %d mismatch", ci, r)
			}
		}
	}
}

func TestLoadRowsUnalignedRange(t *testing.T) {
	tbl := makeTable(t, 700)
	s := NewStore(Config{})
	l, err := PutTable(s, "d", tbl, 4, 150) // row groups of 150; request 100..460
	if err != nil {
		t.Fatal(err)
	}
	part, err := LoadRows(s, "d", l, 100, 460)
	if err != nil {
		t.Fatal(err)
	}
	want := tbl.Gather(rowRange(100, 460))
	tablesEqual(t, want, part)
}

func rowRange(start, end int) []int32 {
	out := make([]int32, 0, end-start)
	for r := start; r < end; r++ {
		out = append(out, int32(r))
	}
	return out
}

func TestLoadRowsBounds(t *testing.T) {
	tbl := makeTable(t, 100)
	s := NewStore(Config{})
	l, _ := PutTable(s, "d", tbl, 3, 50)
	if _, err := LoadRows(s, "d", l, -1, 10); err == nil {
		t.Fatal("negative start accepted")
	}
	if _, err := LoadRows(s, "d", l, 0, 101); err == nil {
		t.Fatal("end past table accepted")
	}
}

func TestColumnGroupingReducesOpens(t *testing.T) {
	// The Section-VII claim: grouping columns reduces connection cost for
	// column loading. One file per column pays m opens per row group;
	// grouping pays m/colsPerGroup.
	tbl := makeTable(t, 600)
	one := NewStore(Config{ConnectLatency: time.Millisecond})
	grouped := NewStore(Config{ConnectLatency: time.Millisecond})
	lOne, _ := PutTable(one, "d", tbl, 1, 300)
	lGrp, _ := PutTable(grouped, "d", tbl, 4, 300)

	cols := tbl.FeatureIndexes()
	if _, err := LoadColumns(one, "d", lOne, cols); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadColumns(grouped, "d", lGrp, cols); err != nil {
		t.Fatal(err)
	}
	so, sg := one.Stats(), grouped.Stats()
	if sg.Opens >= so.Opens {
		t.Fatalf("grouping did not reduce opens: %d vs %d", sg.Opens, so.Opens)
	}
	if sg.SimulatedTime >= so.SimulatedTime {
		t.Fatalf("grouping did not reduce simulated cost: %v vs %v", sg.SimulatedTime, so.SimulatedTime)
	}
}

func TestLayoutGroupOfColumn(t *testing.T) {
	tbl := makeTable(t, 100)
	s := NewStore(Config{})
	l, _ := PutTable(s, "d", tbl, 3, 100)
	if g := l.GroupOfColumn(0); g != 0 {
		t.Fatalf("col 0 group = %d", g)
	}
	if g := l.GroupOfColumn(5); g != 1 {
		t.Fatalf("col 5 group = %d", g)
	}
	if g := l.GroupOfColumn(99); g != -1 {
		t.Fatalf("missing col group = %d", g)
	}
}

func TestReadLayoutMissing(t *testing.T) {
	s := NewStore(Config{})
	if _, err := ReadLayout(s, "nope"); err == nil {
		t.Fatal("missing layout read succeeded")
	}
}

func TestStoreSleepMode(t *testing.T) {
	s := NewStore(Config{ConnectLatency: 30 * time.Millisecond, Sleep: true})
	s.Put("f", []byte("x"))
	start := time.Now()
	if _, err := s.Read("f"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("sleep mode did not sleep: %v", elapsed)
	}
}

func TestTotalBytes(t *testing.T) {
	s := NewStore(Config{})
	s.Put("a", make([]byte, 100))
	s.Put("b", make([]byte, 50))
	if got := s.TotalBytes(); got != 150 {
		t.Fatalf("total = %d", got)
	}
}
