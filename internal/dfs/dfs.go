// Package dfs is the simulated distributed file system standing in for
// HDFS. It provides what TreeServer needs from the Hadoop ecosystem:
//
//   - named immutable files with per-open "connection" latency and a read
//     throughput model, the costs that motivated the paper's column-group
//     file layout (Section VII, Fig. 13);
//   - the dedicated "put" layout: each table is stored as a grid of
//     column-group × row-group files so column-partitioned TreeServer
//     loading and row-partitioned deep-forest jobs both read few files;
//   - counters (opens, bytes, simulated time) for the layout ablation.
package dfs

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config models the cluster filesystem's performance characteristics.
type Config struct {
	// ConnectLatency is charged on every Open, mimicking HDFS connection
	// setup, which dominated file reads in the paper's test.
	ConnectLatency time.Duration
	// ThroughputBps is the sequential read bandwidth (0 = infinite).
	ThroughputBps float64
	// Sleep makes reads actually take the simulated time; when false the
	// cost is only accounted, keeping unit tests fast.
	Sleep bool
}

// Store is an in-memory simulated DFS namespace.
type Store struct {
	cfg   Config
	mu    sync.RWMutex
	files map[string][]byte

	opens     atomic.Int64
	bytesRead atomic.Int64
	simulated atomic.Int64 // nanoseconds of modelled IO time
}

// Stats summarises a store's read activity.
type Stats struct {
	Opens         int64
	BytesRead     int64
	SimulatedTime time.Duration
}

// NewStore creates an empty store.
func NewStore(cfg Config) *Store {
	return &Store{cfg: cfg, files: map[string][]byte{}}
}

// Put writes a file, replacing any existing content.
func (s *Store) Put(path string, data []byte) {
	s.mu.Lock()
	s.files[path] = append([]byte(nil), data...)
	s.mu.Unlock()
}

// Exists reports whether the path is present.
func (s *Store) Exists(path string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.files[path]
	return ok
}

// Delete removes a file (no error if absent).
func (s *Store) Delete(path string) {
	s.mu.Lock()
	delete(s.files, path)
	s.mu.Unlock()
}

// List returns the sorted paths with the given prefix.
func (s *Store) List(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for p := range s.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Read opens and fully reads a file, charging one connection latency plus
// throughput-proportional transfer time.
func (s *Store) Read(path string) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.files[path]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dfs: file %q not found", path)
	}
	s.opens.Add(1)
	s.bytesRead.Add(int64(len(data)))
	cost := s.cfg.ConnectLatency
	if s.cfg.ThroughputBps > 0 {
		cost += time.Duration(float64(len(data)) / s.cfg.ThroughputBps * float64(time.Second))
	}
	s.simulated.Add(int64(cost))
	if s.cfg.Sleep && cost > 0 {
		time.Sleep(cost)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Stats returns the accumulated read counters.
func (s *Store) Stats() Stats {
	return Stats{
		Opens:         s.opens.Load(),
		BytesRead:     s.bytesRead.Load(),
		SimulatedTime: time.Duration(s.simulated.Load()),
	}
}

// ResetStats zeroes the counters (between experiment phases).
func (s *Store) ResetStats() {
	s.opens.Store(0)
	s.bytesRead.Store(0)
	s.simulated.Store(0)
}

// TotalBytes returns the summed size of all stored files.
func (s *Store) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, d := range s.files {
		n += int64(len(d))
	}
	return n
}

// Reader is a convenience for decoding a stored file through bytes.Reader.
func (s *Store) Reader(path string) (*bytes.Reader, error) {
	data, err := s.Read(path)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(data), nil
}
