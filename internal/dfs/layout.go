package dfs

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"treeserver/internal/dataset"
)

// Layout records how a table was laid out on the store by Put: a grid of
// column-group × row-group files (Fig. 13). A TreeServer worker loading a
// column group reads one file per row group (one grid column); a
// row-partitioned job reads one file per column group (one grid row).
type Layout struct {
	NumRows   int
	Target    int
	ColGroups [][]int  // table column indexes per group, ascending
	RowGroups [][2]int // [start, end) row ranges
	// Column metadata, indexed by table column.
	Names  []string
	Kinds  []dataset.Kind
	Levels [][]string
}

// NumCols returns the table's total column count.
func (l Layout) NumCols() int { return len(l.Names) }

// GroupOfColumn returns the column group index containing col, or -1.
func (l Layout) GroupOfColumn(col int) int {
	for g, cols := range l.ColGroups {
		for _, c := range cols {
			if c == col {
				return g
			}
		}
	}
	return -1
}

func metaPath(base string) string { return base + "/_meta" }

func cellPath(base string, cg, rg int) string {
	return fmt.Sprintf("%s/cg%04d_rg%04d", base, cg, rg)
}

// cell is the payload of one grid file: the group's column shards for one
// row range, without metadata (that lives in _meta).
type cell struct {
	Floats [][]float64
	Cats   [][]int32
	Miss   [][]uint64
}

// PutTable writes the table under base with the given grouping parameters.
// This is the library form of the dedicated "put" program (cmd/tsput): it
// replaces HDFS's row-block upload so each data column is loadable in its
// entirety, while column grouping keeps the file count low enough that
// connection latency amortises.
func PutTable(s FS, base string, tbl *dataset.Table, colsPerGroup, rowsPerGroup int) (Layout, error) {
	if colsPerGroup < 1 {
		colsPerGroup = 1
	}
	if rowsPerGroup < 1 || rowsPerGroup > tbl.NumRows() {
		rowsPerGroup = tbl.NumRows()
	}
	if rowsPerGroup == 0 {
		rowsPerGroup = 1
	}
	l := Layout{NumRows: tbl.NumRows(), Target: tbl.Target}
	for i, c := range tbl.Cols {
		l.Names = append(l.Names, c.Name)
		l.Kinds = append(l.Kinds, c.Kind)
		l.Levels = append(l.Levels, c.Levels)
		if i%colsPerGroup == 0 {
			l.ColGroups = append(l.ColGroups, nil)
		}
		g := len(l.ColGroups) - 1
		l.ColGroups[g] = append(l.ColGroups[g], i)
	}
	for start := 0; start < tbl.NumRows(); start += rowsPerGroup {
		end := start + rowsPerGroup
		if end > tbl.NumRows() {
			end = tbl.NumRows()
		}
		l.RowGroups = append(l.RowGroups, [2]int{start, end})
	}
	if tbl.NumRows() == 0 {
		l.RowGroups = [][2]int{{0, 0}}
	}

	var meta bytes.Buffer
	if err := gob.NewEncoder(&meta).Encode(l); err != nil {
		return Layout{}, fmt.Errorf("dfs: encoding layout: %w", err)
	}
	s.Put(metaPath(base), meta.Bytes())

	for cg, cols := range l.ColGroups {
		for rg, rr := range l.RowGroups {
			var c cell
			for _, colIdx := range cols {
				col := tbl.Cols[colIdx]
				rows := make([]int32, 0, rr[1]-rr[0])
				for r := rr[0]; r < rr[1]; r++ {
					rows = append(rows, int32(r))
				}
				shard := col.Gather(rows)
				c.Floats = append(c.Floats, shard.Floats)
				c.Cats = append(c.Cats, shard.Cats)
				c.Miss = append(c.Miss, shard.Miss)
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(c); err != nil {
				return Layout{}, fmt.Errorf("dfs: encoding cell (%d,%d): %w", cg, rg, err)
			}
			s.Put(cellPath(base, cg, rg), buf.Bytes())
		}
	}
	return l, nil
}

// ReadLayout loads a table's layout metadata.
func ReadLayout(s FS, base string) (Layout, error) {
	r, err := s.Reader(metaPath(base))
	if err != nil {
		return Layout{}, err
	}
	var l Layout
	if err := gob.NewDecoder(r).Decode(&l); err != nil {
		return Layout{}, fmt.Errorf("dfs: decoding layout: %w", err)
	}
	return l, nil
}

func readCell(s FS, base string, cg, rg int) (cell, error) {
	r, err := s.Reader(cellPath(base, cg, rg))
	if err != nil {
		return cell{}, err
	}
	var c cell
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return cell{}, fmt.Errorf("dfs: decoding cell (%d,%d): %w", cg, rg, err)
	}
	return c, nil
}

func (l Layout) newColumn(col int, n int) *dataset.Column {
	c := &dataset.Column{Name: l.Names[col], Kind: l.Kinds[col], Levels: l.Levels[col]}
	if c.Kind == dataset.Numeric {
		c.Floats = make([]float64, 0, n)
	} else {
		c.Cats = make([]int32, 0, n)
	}
	return c
}

func appendShard(dst *dataset.Column, c cell, pos, offset int) {
	base := dst.Len()
	dst.Floats = append(dst.Floats, c.Floats[pos]...)
	dst.Cats = append(dst.Cats, c.Cats[pos]...)
	if c.Miss[pos] != nil {
		n := len(c.Floats[pos]) + len(c.Cats[pos])
		for i := 0; i < n; i++ {
			w := i >> 6
			if w < len(c.Miss[pos]) && c.Miss[pos][w]&(1<<(uint(i)&63)) != 0 {
				dst.SetMissing(base + i)
			}
		}
	}
	_ = offset
}

// LoadColumns reads full columns (the TreeServer worker loading path): all
// row groups of every column group containing a requested column. The
// returned map holds complete columns keyed by table index.
func LoadColumns(s FS, base string, l Layout, cols []int) (map[int]*dataset.Column, error) {
	needGroups := map[int]bool{}
	wanted := map[int]bool{}
	for _, c := range cols {
		g := l.GroupOfColumn(c)
		if g < 0 {
			return nil, fmt.Errorf("dfs: column %d not in layout", c)
		}
		needGroups[g] = true
		wanted[c] = true
	}
	out := map[int]*dataset.Column{}
	for g := range needGroups {
		groupCols := l.ColGroups[g]
		acc := make([]*dataset.Column, len(groupCols))
		for i, colIdx := range groupCols {
			acc[i] = l.newColumn(colIdx, l.NumRows)
		}
		for rg := range l.RowGroups {
			c, err := readCell(s, base, g, rg)
			if err != nil {
				return nil, err
			}
			for i := range groupCols {
				appendShard(acc[i], c, i, l.RowGroups[rg][0])
			}
		}
		for i, colIdx := range groupCols {
			if wanted[colIdx] {
				out[colIdx] = acc[i]
			}
		}
	}
	return out, nil
}

// LoadRows reads the table rows in [start, end) across every column (the
// row-partitioned path used by deep-forest extraction jobs). Row-group
// boundaries need not align: overlapping groups are read and trimmed.
func LoadRows(s FS, base string, l Layout, start, end int) (*dataset.Table, error) {
	if start < 0 || end > l.NumRows || start > end {
		return nil, fmt.Errorf("dfs: row range [%d,%d) out of [0,%d)", start, end, l.NumRows)
	}
	cols := make([]*dataset.Column, l.NumCols())
	for i := range cols {
		cols[i] = l.newColumn(i, end-start)
	}
	for rg, rr := range l.RowGroups {
		if rr[1] <= start || rr[0] >= end {
			continue
		}
		for cg, groupCols := range l.ColGroups {
			c, err := readCell(s, base, cg, rg)
			if err != nil {
				return nil, err
			}
			lo, hi := max(start, rr[0]), min(end, rr[1])
			for i, colIdx := range groupCols {
				full := l.newColumn(colIdx, rr[1]-rr[0])
				appendShard(full, c, i, rr[0])
				sub := make([]int32, 0, hi-lo)
				for r := lo; r < hi; r++ {
					sub = append(sub, int32(r-rr[0]))
				}
				shard := full.Gather(sub)
				base := cols[colIdx].Len()
				cols[colIdx].Floats = append(cols[colIdx].Floats, shard.Floats...)
				cols[colIdx].Cats = append(cols[colIdx].Cats, shard.Cats...)
				for j := 0; j < shard.Len(); j++ {
					if shard.IsMissing(j) {
						cols[colIdx].SetMissing(base + j)
					}
				}
			}
		}
	}
	return dataset.NewTable(cols, l.Target)
}

// LoadTable reads the whole table back.
func LoadTable(s FS, base string) (*dataset.Table, error) {
	l, err := ReadLayout(s, base)
	if err != nil {
		return nil, err
	}
	return LoadRows(s, base, l, 0, l.NumRows)
}
